"""Embedded objects: images and tables inside documents.

The demo edits documents containing "tables, images etc.".  Objects are
rows in ``tx_objects`` anchored at a character OID (the character they
follow), so — like structure ranges — they float correctly under
concurrent editing.  An in-document *table* is itself relational data: a
JSON grid of cell strings that can be edited cell-by-cell, each cell edit
being one database transaction.
"""

from __future__ import annotations

from ..db import Database, col
from ..errors import TextError
from ..ids import Oid
from . import dbschema as S
from .document import DocumentHandle


class ObjectManager:
    """Insert and edit embedded images and tables."""

    def __init__(self, db: Database) -> None:
        self.db = db
        S.install_text_schema(db)

    # -- insertion -------------------------------------------------------

    def insert_image(
        self,
        handle: DocumentHandle,
        pos: int,
        user: str,
        *,
        name: str,
        width: int,
        height: int,
        content_ref: str = "",
    ) -> Oid:
        """Insert an image object anchored at position ``pos``."""
        anchor = handle.anchor_for(pos)
        obj = self.db.new_oid("obj")
        self.db.insert(S.OBJECTS, {
            "obj": obj, "doc": handle.doc, "kind": "image",
            "anchor": anchor, "author": user,
            "created_at": self.db.now(),
            "data": {
                "name": name, "width": width, "height": height,
                "content_ref": content_ref,
            },
        })
        return obj

    def insert_table(
        self,
        handle: DocumentHandle,
        pos: int,
        user: str,
        *,
        rows: int,
        cols: int,
    ) -> Oid:
        """Insert an empty ``rows x cols`` table at position ``pos``."""
        if rows <= 0 or cols <= 0:
            raise TextError("table must have positive dimensions")
        anchor = handle.anchor_for(pos)
        obj = self.db.new_oid("obj")
        self.db.insert(S.OBJECTS, {
            "obj": obj, "doc": handle.doc, "kind": "table",
            "anchor": anchor, "author": user,
            "created_at": self.db.now(),
            "data": {
                "rows": rows, "cols": cols,
                "cells": [["" for __ in range(cols)] for __ in range(rows)],
            },
        })
        return obj

    # -- editing -----------------------------------------------------------

    def _object_view(self, obj: Oid):
        row = self.db.query(S.OBJECTS).where(col("obj") == obj).first()
        if row is None or row["deleted"]:
            raise TextError(f"no object {obj}")
        return row

    def get(self, obj: Oid) -> dict:
        """Fetch a live object row by OID (raises if absent/deleted)."""
        return dict(self._object_view(obj))

    def set_cell(self, obj: Oid, row: int, col_: int, value: str,
                 user: str) -> None:
        """Edit one table cell (one transaction, collaborative)."""
        view = self._object_view(obj)
        if view["kind"] != "table":
            raise TextError(f"object {obj} is not a table")
        data = dict(view["data"])
        cells = [list(r) for r in data["cells"]]
        if not (0 <= row < data["rows"] and 0 <= col_ < data["cols"]):
            raise TextError(
                f"cell ({row},{col_}) outside {data['rows']}x{data['cols']}"
            )
        cells[row][col_] = value
        data["cells"] = cells
        self.db.update(S.OBJECTS, view.rowid, {"data": data})

    def add_row(self, obj: Oid, user: str) -> None:
        """Append a row to a table."""
        view = self._object_view(obj)
        if view["kind"] != "table":
            raise TextError(f"object {obj} is not a table")
        data = dict(view["data"])
        cells = [list(r) for r in data["cells"]]
        cells.append(["" for __ in range(data["cols"])])
        data["cells"] = cells
        data["rows"] += 1
        self.db.update(S.OBJECTS, view.rowid, {"data": data})

    def delete_object(self, obj: Oid, user: str) -> None:
        """Logically delete an object (undo-able)."""
        view = self._object_view(obj)
        self.db.update(S.OBJECTS, view.rowid, {"deleted": True})

    def restore_object(self, obj: Oid, user: str) -> None:
        """Undo a logical object deletion."""
        row = self.db.query(S.OBJECTS).where(col("obj") == obj).first()
        if row is None:
            raise TextError(f"no object {obj}")
        self.db.update(S.OBJECTS, row.rowid, {"deleted": False})

    # -- queries ---------------------------------------------------------------

    def objects_in(self, doc: Oid, *, include_deleted: bool = False) -> list[dict]:
        """Objects of a document (deleted ones on request)."""
        rows = self.db.query(S.OBJECTS).where(col("doc") == doc).run()
        return [
            dict(r) for r in rows if include_deleted or not r["deleted"]
        ]

    def objects_with_positions(
        self, handle: DocumentHandle
    ) -> list[tuple[int | None, dict]]:
        """Objects of a document with their current anchor positions."""
        out: list[tuple[int | None, dict]] = []
        for row in self.objects_in(handle.doc):
            anchor = row["anchor"]
            if anchor == handle.begin_char:
                pos: int | None = 0
            else:
                anchor_pos = handle.position_of(anchor)
                pos = None if anchor_pos is None else anchor_pos + 1
            out.append((pos, row))
        out.sort(key=lambda item: (item[0] is None, item[0]))
        return out

    def render_table(self, obj: Oid) -> str:
        """ASCII-render a table object (demo output)."""
        data = self.get(obj)["data"]
        widths = [
            max([len(data["cells"][r][c]) for r in range(data["rows"])] + [1])
            for c in range(data["cols"])
        ]
        sep = "+" + "+".join("-" * (w + 2) for w in widths) + "+"
        lines = [sep]
        for row_cells in data["cells"]:
            cells = " | ".join(
                cell.ljust(widths[c]) for c, cell in enumerate(row_cells)
            )
            lines.append(f"| {cells} |")
            lines.append(sep)
        return "\n".join(lines)
