"""The TeNDaX relational schema: text stored natively in database tables.

This is the heart of the paper.  A document is not a blob: every character
is one row in ``tx_chars`` carrying the full character-level metadata the
paper lists (author, roles, date and time, copy-paste references, undo/redo
state, security settings, version, user-defined properties).  Characters
are linked by ``prev``/``next`` neighbour references — *not* byte offsets —
so concurrent inserts never invalidate each other's positions, and a
keystroke is a constant number of row operations regardless of document
size.

Tables
------
``tx_documents``
    One row per document (document-level metadata from §2 of the paper).
``tx_chars``
    One row per character, including two sentinel rows (BEGIN/END) per
    document that anchor the linked list.  Characters are never physically
    removed while the document lives: deletion sets ``deleted`` so that
    undo, lineage and versioning keep working.
``tx_styles`` / ``tx_templates``
    Named layout definitions; characters reference a style by OID.
``tx_structure``
    The document structure tree (sections, paragraphs, headings ...).
``tx_objects``
    Embedded non-character objects (images, tables) anchored at characters.
``tx_notes``
    Margin notes anchored at characters.
``tx_copylog``
    One row per copy-paste action (range level); together with per-char
    ``copy_src`` references this drives the data-lineage graph of Fig. 1.
``tx_access_log``
    Who read/wrote which document when — the raw feed for dynamic folders
    and the metadata-based search of §3.
``tx_versions``
    Named document versions (snapshots of the live character sequence).
"""

from __future__ import annotations

from ..db import Database, column

#: Sentinel rows anchoring each document's linked list store an empty
#: string as their "character": real characters always have length 1, so
#: ``row["ch"] == ""`` identifies a sentinel unambiguously.
BEGIN_MARK = ""
END_MARK = ""

DOCUMENTS = "tx_documents"
CHARS = "tx_chars"
STYLES = "tx_styles"
TEMPLATES = "tx_templates"
STRUCTURE = "tx_structure"
OBJECTS = "tx_objects"
NOTES = "tx_notes"
COPYLOG = "tx_copylog"
ACCESS_LOG = "tx_access_log"
VERSIONS = "tx_versions"

ALL_TABLES = (
    DOCUMENTS, CHARS, STYLES, TEMPLATES, STRUCTURE, OBJECTS, NOTES,
    COPYLOG, ACCESS_LOG, VERSIONS,
)


def install_text_schema(db: Database) -> None:
    """Create the TeNDaX tables and indexes in ``db``.

    Idempotent: does nothing for tables that already exist.
    """
    if not db.has_table(DOCUMENTS):
        db.create_table(DOCUMENTS, [
            column("doc", "oid"),
            column("name", "str"),
            column("creator", "str"),
            column("created_at", "timestamp"),
            column("state", "str", default="draft"),
            column("template", "oid", nullable=True),
            column("size", "int", default=0),
            column("last_modified", "timestamp"),
            column("last_modified_by", "str"),
            column("begin_char", "oid", nullable=True),
            column("end_char", "oid", nullable=True),
            column("props", "json", nullable=True),
        ], key="doc")
        db.create_index(DOCUMENTS, "name")
        db.create_index(DOCUMENTS, "creator")
        db.create_index(DOCUMENTS, "last_modified", kind="ordered")

    if not db.has_table(CHARS):
        db.create_table(CHARS, [
            column("char", "oid"),            # character OID (the key)
            column("doc", "oid"),             # owning document
            column("ch", "str"),              # the character itself (len 1)
            column("prev", "oid", nullable=True),
            column("next", "oid", nullable=True),
            column("author", "str"),
            column("created_at", "timestamp"),
            column("deleted", "bool", default=False),
            column("deleted_by", "str", nullable=True),
            column("deleted_at", "timestamp", nullable=True),
            column("style", "oid", nullable=True),
            column("copy_src", "oid", nullable=True),   # lineage: source char
            column("copy_op", "oid", nullable=True),    # lineage: copylog row
            column("version", "int", default=0),
            column("props", "json", nullable=True),
        ], key="char")
        db.create_index(CHARS, "doc")

    if not db.has_table(STYLES):
        db.create_table(STYLES, [
            column("style", "oid"),
            column("doc", "oid", nullable=True),  # NULL = global/template
            column("name", "str"),
            column("attrs", "json"),
            column("author", "str"),
            column("created_at", "timestamp"),
        ], key="style")
        db.create_index(STYLES, "doc")
        db.create_index(STYLES, "name")

    if not db.has_table(TEMPLATES):
        db.create_table(TEMPLATES, [
            column("template", "oid"),
            column("name", "str"),
            column("styles", "json"),        # list of style definitions
            column("structure", "json"),     # default structure outline
            column("author", "str"),
            column("created_at", "timestamp"),
        ], key="template")
        db.create_index(TEMPLATES, "name")

    if not db.has_table(STRUCTURE):
        db.create_table(STRUCTURE, [
            column("node", "oid"),
            column("doc", "oid"),
            column("kind", "str"),           # section/heading/paragraph/list
            column("parent", "oid", nullable=True),
            column("pos", "int", default=0),
            column("label", "str", default=""),
            column("start_char", "oid", nullable=True),
            column("end_char", "oid", nullable=True),
            column("author", "str"),
            column("created_at", "timestamp"),
            column("props", "json", nullable=True),
        ], key="node")
        db.create_index(STRUCTURE, "doc")
        db.create_index(STRUCTURE, "parent")

    if not db.has_table(OBJECTS):
        db.create_table(OBJECTS, [
            column("obj", "oid"),
            column("doc", "oid"),
            column("kind", "str"),           # "image" | "table"
            column("anchor", "oid"),         # character the object follows
            column("data", "json"),
            column("author", "str"),
            column("created_at", "timestamp"),
            column("deleted", "bool", default=False),
        ], key="obj")
        db.create_index(OBJECTS, "doc")

    if not db.has_table(NOTES):
        db.create_table(NOTES, [
            column("note", "oid"),
            column("doc", "oid"),
            column("anchor", "oid"),
            column("author", "str"),
            column("body", "str"),
            column("created_at", "timestamp"),
            column("resolved", "bool", default=False),
        ], key="note")
        db.create_index(NOTES, "doc")

    if not db.has_table(COPYLOG):
        db.create_table(COPYLOG, [
            column("op", "oid"),
            column("src_doc", "oid", nullable=True),  # NULL for external
            column("external_source", "str", nullable=True),
            column("dst_doc", "oid"),
            column("n_chars", "int"),
            column("user", "str"),
            column("at", "timestamp"),
        ], key="op")
        db.create_index(COPYLOG, "dst_doc")
        db.create_index(COPYLOG, "src_doc")

    if not db.has_table(ACCESS_LOG):
        db.create_table(ACCESS_LOG, [
            column("entry", "oid"),
            column("doc", "oid"),
            column("user", "str"),
            column("action", "str"),         # "create" | "read" | "write"
            column("at", "timestamp"),
        ], key="entry")
        db.create_index(ACCESS_LOG, "doc")
        db.create_index(ACCESS_LOG, "user")
        db.create_index(ACCESS_LOG, "at", kind="ordered")

    if not db.has_table(VERSIONS):
        db.create_table(VERSIONS, [
            column("version", "oid"),
            column("doc", "oid"),
            column("name", "str"),
            column("author", "str"),
            column("created_at", "timestamp"),
            column("char_oids", "json"),     # live character oids, in order
            column("text", "str"),           # denormalised text snapshot
        ], key="version")
        db.create_index(VERSIONS, "doc")
