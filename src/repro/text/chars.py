"""Character-level primitives: the neighbour-linked text representation.

These are the low-level transactional operations the paper's "real-time
transactions" consist of.  A keystroke becomes:

* one ``tx_chars`` INSERT (the new character, pointing at its neighbours),
* two ``tx_chars`` UPDATEs (the neighbours' ``next``/``prev`` pointers),

— a constant amount of work however large the document is.  Deletion is
*logical*: the row stays in the chain with ``deleted = True`` so undo,
lineage and versioning can resurrect or inspect it; traversal skips it.

All functions here operate inside a caller-provided transaction so that
higher layers (editor operations, copy-paste, undo) can compose several
primitives into one atomic edit.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, Sequence

from ..db import Database, Transaction, col
from ..errors import InvalidPositionError, UnknownCharacterError
from ..ids import Oid
from . import dbschema as S

if TYPE_CHECKING:  # pragma: no cover - typing only
    pass


def char_row(db: Database, char_oid: Oid,
             txn: Transaction | None = None) -> "tuple[int, dict]":
    """Return ``(rowid, row)`` for a character by its OID."""
    query = txn.query(S.CHARS) if txn is not None else db.query(S.CHARS)
    result = query.where(col("char") == char_oid).first()
    if result is None:
        raise UnknownCharacterError(f"no character {char_oid}")
    return result.rowid, dict(result)


def create_anchors(txn: Transaction, db: Database, doc: Oid, author: str,
                   now: float) -> tuple[Oid, Oid]:
    """Create the BEGIN/END sentinel rows for a new document."""
    begin_oid = db.new_oid("char")
    end_oid = db.new_oid("char")
    txn.insert(S.CHARS, {
        "char": begin_oid, "doc": doc, "ch": S.BEGIN_MARK,
        "prev": None, "next": end_oid,
        "author": author, "created_at": now,
    })
    txn.insert(S.CHARS, {
        "char": end_oid, "doc": doc, "ch": S.END_MARK,
        "prev": begin_oid, "next": None,
        "author": author, "created_at": now,
    })
    return begin_oid, end_oid


def insert_chars(
    txn: Transaction,
    db: Database,
    doc: Oid,
    after: Oid,
    text: str,
    author: str,
    now: float,
    *,
    style: Oid | None = None,
    copy_srcs: Sequence[Oid | None] | None = None,
    copy_op: Oid | None = None,
) -> list[Oid]:
    """Insert ``text`` after character ``after``; returns the new OIDs.

    ``copy_srcs`` (parallel to ``text``) records, per character, the OID of
    the source character it was copied from — the per-character lineage
    reference of the paper.  ``copy_op`` ties all characters of one paste
    to its ``tx_copylog`` entry.
    """
    if not text:
        return []
    if copy_srcs is not None and len(copy_srcs) != len(text):
        raise ValueError("copy_srcs must parallel text")
    anchor_rowid, anchor = char_row(db, after, txn)
    if anchor["doc"] != doc:
        raise InvalidPositionError(
            f"character {after} belongs to {anchor['doc']}, not {doc}"
        )
    successor = anchor["next"]
    if successor is None:
        raise InvalidPositionError("cannot insert after the END sentinel")

    oids = [db.new_oid("char") for __ in text]
    prev_oid = after
    for i, ch in enumerate(text):
        next_oid = oids[i + 1] if i + 1 < len(oids) else successor
        txn.insert(S.CHARS, {
            "char": oids[i], "doc": doc, "ch": ch,
            "prev": prev_oid, "next": next_oid,
            "author": author, "created_at": now,
            "style": style,
            "copy_src": copy_srcs[i] if copy_srcs else None,
            "copy_op": copy_op,
        })
        prev_oid = oids[i]

    txn.update(S.CHARS, anchor_rowid, {"next": oids[0]})
    succ_rowid, __ = char_row(db, successor, txn)
    txn.update(S.CHARS, succ_rowid, {"prev": oids[-1]})
    return oids


def logical_delete(txn: Transaction, db: Database, char_oids: Sequence[Oid],
                   user: str, now: float) -> int:
    """Mark characters deleted (kept in the chain for undo/lineage).

    Idempotent: characters that are already deleted (e.g. an undo of an
    insert whose characters another user deleted meanwhile) are skipped.
    Returns the number of characters actually flipped, which is what
    document size accounting must use.
    """
    pairs = _resolve_and_lock(txn, db, char_oids)
    flipped = 0
    for rowid, row in pairs:
        if not row["ch"]:
            raise InvalidPositionError("cannot delete a sentinel")
        if row["deleted"]:
            continue
        txn.update(S.CHARS, rowid, {
            "deleted": True, "deleted_by": user, "deleted_at": now,
            "version": row["version"] + 1,
        })
        flipped += 1
    return flipped


def undelete(txn: Transaction, db: Database, char_oids: Sequence[Oid],
             user: str) -> int:
    """Clear the deleted flag (the undo of a delete).

    Idempotent like :func:`logical_delete`; returns the number of
    characters actually resurrected.
    """
    flipped = 0
    for rowid, row in _resolve_and_lock(txn, db, char_oids):
        if not row["deleted"]:
            continue
        txn.update(S.CHARS, rowid, {
            "deleted": False, "deleted_by": None, "deleted_at": None,
            "version": row["version"] + 1,
        })
        flipped += 1
    return flipped


def set_style(txn: Transaction, db: Database, char_oids: Sequence[Oid],
              style: Oid | None) -> None:
    """Point characters at a style definition (collaborative layout)."""
    for rowid, row in _resolve_and_lock(txn, db, char_oids):
        txn.update(S.CHARS, rowid, {
            "style": style, "version": row["version"] + 1,
        })


def _resolve_and_lock(txn: Transaction, db: Database,
                      char_oids: Sequence[Oid]) -> list[tuple[int, dict]]:
    """Resolve a range of characters and lock their rows in one batch.

    Range operations know every row they will touch up front, so one
    :meth:`~repro.db.transaction.Transaction.lock_rows` call amortises
    the lock-manager round-trip across the range instead of paying it
    inside each per-character update.
    """
    pairs = [char_row(db, oid, txn) for oid in char_oids]
    txn.lock_rows(S.CHARS, [rowid for rowid, _ in pairs])
    return pairs


def doc_char_rows(db: Database, doc: Oid,
                  txn: Transaction | None = None) -> dict[Oid, dict]:
    """All character rows of a document, keyed by char OID."""
    query = txn.query(S.CHARS) if txn is not None else db.query(S.CHARS)
    rows = query.where(col("doc") == doc).run()
    return {row["char"]: dict(row) for row in rows}


def traverse(
    db: Database,
    doc: Oid,
    begin_char: Oid,
    *,
    txn: Transaction | None = None,
    include_deleted: bool = False,
) -> Iterator[dict]:
    """Yield character rows in document order (sentinels excluded).

    Walks the neighbour chain starting at the BEGIN sentinel.  Raises
    :class:`~repro.errors.UnknownCharacterError` if the chain is broken.
    """
    rows = doc_char_rows(db, doc, txn)
    try:
        current = rows[begin_char]["next"]
    except KeyError:
        raise UnknownCharacterError(f"no BEGIN sentinel {begin_char}") from None
    hops = 0
    limit = len(rows) + 1
    while current is not None:
        try:
            row = rows[current]
        except KeyError:
            raise UnknownCharacterError(
                f"broken chain in {doc}: missing {current}"
            ) from None
        if row["next"] is None:       # END sentinel
            return
        if include_deleted or not row["deleted"]:
            yield row
        current = row["next"]
        hops += 1
        if hops > limit:
            raise UnknownCharacterError(f"cycle in character chain of {doc}")


def chain_text(db: Database, doc: Oid, begin_char: Oid,
               txn: Transaction | None = None) -> str:
    """The document's visible text, reconstructed from the chain."""
    return "".join(
        row["ch"] for row in traverse(db, doc, begin_char, txn=txn)
    )


def check_chain_integrity(db: Database, doc: Oid, begin_char: Oid,
                          end_char: Oid) -> list[str]:
    """Validate the doubly-linked invariants; returns a list of problems.

    Used by tests and by the recovery bench to show the chain survives
    crash replay intact.
    """
    problems: list[str] = []
    rows = doc_char_rows(db, doc)
    if begin_char not in rows:
        return [f"missing BEGIN sentinel {begin_char}"]
    if end_char not in rows:
        return [f"missing END sentinel {end_char}"]
    seen: set[Oid] = set()
    current: Oid | None = begin_char
    prev: Oid | None = None
    while current is not None:
        row = rows.get(current)
        if row is None:
            problems.append(f"chain references missing char {current}")
            break
        if current in seen:
            problems.append(f"cycle at {current}")
            break
        seen.add(current)
        if row["prev"] != prev:
            problems.append(
                f"{current}: prev is {row['prev']}, expected {prev}"
            )
        prev = current
        current = row["next"]
    if prev != end_char:
        problems.append(f"chain ends at {prev}, expected END {end_char}")
    unreached = set(rows) - seen
    if unreached:
        problems.append(f"{len(unreached)} characters unreachable")
    return problems
