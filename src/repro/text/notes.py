"""Margin notes anchored at characters.

"Inserting notes" is one of the editing actions §2 enumerates.  A note is
a row anchored at a character OID; it follows its anchor through concurrent
edits and survives (greys out) if the anchor is deleted.
"""

from __future__ import annotations

from ..db import Database, col
from ..errors import TextError
from ..ids import Oid
from . import chars as C
from . import dbschema as S
from .document import DocumentHandle


class NoteManager:
    """Create, resolve and list margin notes."""

    def __init__(self, db: Database) -> None:
        self.db = db
        S.install_text_schema(db)

    def add_note(self, handle: DocumentHandle, pos: int, body: str,
                 user: str) -> Oid:
        """Attach a note to the character at ``pos``."""
        anchor = handle.char_oid_at(pos)
        note = self.db.new_oid("note")
        self.db.insert(S.NOTES, {
            "note": note, "doc": handle.doc, "anchor": anchor,
            "author": user, "body": body, "created_at": self.db.now(),
        })
        return note

    def _view(self, note: Oid):
        row = self.db.query(S.NOTES).where(col("note") == note).first()
        if row is None:
            raise TextError(f"no note {note}")
        return row

    def get(self, note: Oid) -> dict:
        """Fetch a note row by OID (raises if absent)."""
        return dict(self._view(note))

    def resolve(self, note: Oid, user: str) -> None:
        """Mark a note handled."""
        view = self._view(note)
        self.db.update(S.NOTES, view.rowid, {"resolved": True})

    def reopen(self, note: Oid, user: str) -> None:
        """Un-resolve a note."""
        view = self._view(note)
        self.db.update(S.NOTES, view.rowid, {"resolved": False})

    def notes_in(self, doc: Oid, *, include_resolved: bool = False) -> list[dict]:
        """Notes of a document, oldest first."""
        rows = self.db.query(S.NOTES).where(col("doc") == doc).run()
        out = [dict(r) for r in rows
               if include_resolved or not r["resolved"]]
        out.sort(key=lambda r: r["created_at"])
        return out

    def notes_with_positions(
        self, handle: DocumentHandle, *, include_resolved: bool = False
    ) -> list[tuple[int | None, dict]]:
        """Notes with the current positions of their anchors.

        Position is ``None`` when the anchor character has been deleted
        (the note becomes an orphan but keeps its context via the anchor's
        stored metadata).
        """
        out: list[tuple[int | None, dict]] = []
        for row in self.notes_in(handle.doc, include_resolved=include_resolved):
            out.append((handle.position_of(row["anchor"]), row))
        out.sort(key=lambda item: (item[0] is None, item[0]))
        return out

    def anchor_context(self, note: Oid, radius: int = 10) -> str:
        """Text around the note's anchor (even if the anchor is deleted)."""
        row = self.get(note)
        __, anchor = C.char_row(self.db, row["anchor"])
        doc_meta = (self.db.query(S.DOCUMENTS)
                    .where(col("doc") == row["doc"]).first())
        if doc_meta is None:
            raise TextError(f"document {row['doc']} vanished")
        chain = list(C.traverse(self.db, row["doc"], doc_meta["begin_char"],
                                include_deleted=True))
        oids = [r["char"] for r in chain]
        try:
            center = oids.index(row["anchor"])
        except ValueError:
            return ""
        window = chain[max(0, center - radius): center + radius + 1]
        return "".join(r["ch"] for r in window if not r["deleted"])
