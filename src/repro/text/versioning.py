"""Document versioning.

Because deletion is logical and every character row is immutable in
identity, a *version* is simply the list of character OIDs that were live
at a moment in time.  Tagging a version is cheap (no copying of character
rows); restoring one is an ordinary edit transaction that deletes/undeletes
characters to recreate the tagged state — fully undoable itself.

Character-level diffs between versions come for free from OID set algebra.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..db import Database, col
from ..errors import TextError
from ..ids import Oid
from . import dbschema as S
from .document import DocumentHandle


@dataclass(frozen=True)
class VersionDiff:
    """Character-level difference between two versions."""

    added: tuple[Oid, ...]      # live in `b` but not `a`
    removed: tuple[Oid, ...]    # live in `a` but not `b`

    @property
    def is_empty(self) -> bool:
        return not self.added and not self.removed


class VersionManager:
    """Tag, inspect, diff and restore document versions."""

    def __init__(self, db: Database) -> None:
        self.db = db
        S.install_text_schema(db)

    def tag(self, handle: DocumentHandle, name: str, user: str) -> Oid:
        """Tag the current state of a document as a named version."""
        version = self.db.new_oid("ver")
        oids = handle.char_oids()
        self.db.insert(S.VERSIONS, {
            "version": version, "doc": handle.doc, "name": name,
            "author": user, "created_at": self.db.now(),
            "char_oids": [str(oid) for oid in oids],
            "text": handle.text(),
        })
        return version

    def get(self, version: Oid, txn=None) -> dict:
        """Fetch a version row by OID (raises if absent)."""
        reader = txn if txn is not None else self.db
        row = (reader.query(S.VERSIONS)
               .where(col("version") == version).first())
        if row is None:
            raise TextError(f"no version {version}")
        return dict(row)

    def versions_of(self, doc: Oid) -> list[dict]:
        """Versions of a document, oldest first."""
        rows = self.db.query(S.VERSIONS).where(col("doc") == doc).run()
        return sorted((dict(r) for r in rows),
                      key=lambda r: r["created_at"])

    def find(self, doc: Oid, name: str) -> dict | None:
        """Look a version up by name, or ``None``."""
        for row in self.versions_of(doc):
            if row["name"] == name:
                return row
        return None

    def text_at(self, version: Oid) -> str:
        """The document text as of the tagged version."""
        return self.get(version)["text"]

    def live_oids(self, version: Oid, txn=None) -> list[Oid]:
        """The character OIDs that were live at the version."""
        return [Oid.parse(s) for s in self.get(version, txn)["char_oids"]]

    def diff(self, a: Oid, b: Oid) -> VersionDiff:
        """Character-OID diff: what ``b`` added/removed relative to ``a``.

        Both version rows are read under one snapshot, so a concurrent
        re-tag cannot make the diff compare a stale ``a`` against a
        fresher ``b``.
        """
        with self.db.snapshot() as snap:
            oids_a = self.live_oids(a, txn=snap)
            oids_b = self.live_oids(b, txn=snap)
        set_a, set_b = set(oids_a), set(oids_b)
        added = tuple(oid for oid in oids_b if oid not in set_a)
        removed = tuple(oid for oid in oids_a if oid not in set_b)
        return VersionDiff(added=added, removed=removed)

    def restore(self, handle: DocumentHandle, version: Oid,
                user: str) -> dict:
        """Restore a document to a tagged version — in one transaction.

        Characters typed since the version are logically deleted; deleted
        characters that were live in the version are resurrected, both
        atomically (a crash mid-restore never leaves a half-restored
        document).  Returns ``{"deleted": n, "restored": m}``.
        """
        from . import chars as C
        spec = self.get(version)
        if spec["doc"] != handle.doc:
            raise TextError("version belongs to a different document")
        target = set(self.live_oids(version))
        current = set(handle.char_oids())
        to_delete = [oid for oid in handle.char_oids() if oid not in target]
        to_restore = [oid for oid in self.live_oids(version)
                      if oid not in current]
        if not to_delete and not to_restore:
            return {"deleted": 0, "restored": 0}
        now = self.db.now()
        with self.db.transaction() as txn:
            deleted = C.logical_delete(txn, self.db, to_delete, user, now)
            restored = C.undelete(txn, self.db, to_restore, user)
            handle._touch(txn, user, now, size_delta=restored - deleted)
            handle.store._log_write(txn, handle.doc, user, now)
        return {"deleted": deleted, "restored": restored}
