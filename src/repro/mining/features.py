"""Document feature extraction for mining.

The visual-mining plug-in of the paper navigates "the document and meta
data dimensions".  This module turns each document into (a) a bag of
content tokens and (b) a metadata feature record, both consumed by the
text miner and the document-space layout.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from ..db import Database, col
from ..ids import Oid
from ..text import chars as C
from ..text import dbschema as S

_TOKEN_RE = re.compile(r"[a-z0-9]+")

#: Words too common to be informative (tiny, domain-neutral list).
STOPWORDS = frozenset("""
a an and are as at be but by for from has have if in into is it its not of
on or s t that the their there these they this to was were will with
""".split())


def tokenize(text: str) -> list[str]:
    """Lowercase word tokens, stopwords removed."""
    return [t for t in _TOKEN_RE.findall(text.lower())
            if t not in STOPWORDS and len(t) > 1]


@dataclass
class DocumentFeatures:
    """Everything the miners need to know about one document."""

    doc: Oid
    name: str
    creator: str
    state: str
    size: int
    created_at: float
    last_modified: float
    n_authors: int
    tokens: list[str] = field(default_factory=list)

    @property
    def term_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for token in self.tokens:
            counts[token] = counts.get(token, 0) + 1
        return counts


class FeatureExtractor:
    """Extract :class:`DocumentFeatures` for documents in a database."""

    def __init__(self, db: Database) -> None:
        self.db = db
        S.install_text_schema(db)

    def document_text(self, doc: Oid, txn=None) -> str:
        """A document's visible text: chain walk, or the archived blob.

        Documents without a character chain (``begin_char is None``) are
        *archived*: their whole text lives in ``props["archived_text"]``
        — the archival-portal fast path that skips per-character rows.
        """
        reader = txn if txn is not None else self.db
        row = reader.query(S.DOCUMENTS).where(col("doc") == doc).first()
        if row is None:
            return ""
        if row["begin_char"] is None:
            return str((row["props"] or {}).get("archived_text", ""))
        return C.chain_text(self.db, doc, row["begin_char"], txn=txn)

    def extract(self, doc: Oid, txn=None) -> DocumentFeatures:
        """Features (metadata + tokens) for one document.

        Without an explicit ``txn``, the document row, the chain walk and
        the author sweep all run inside one snapshot transaction — a
        commit landing between the text reconstruction and the CHARS scan
        cannot yield a token bag and an author set from different states.
        """
        if txn is None:
            with self.db.snapshot() as snap:
                return self.extract(doc, txn=snap)
        row = txn.query(S.DOCUMENTS).where(col("doc") == doc).first()
        if row is None:
            from ..errors import UnknownDocumentError
            raise UnknownDocumentError(f"no document {doc}")
        text = self.document_text(doc, txn=txn)
        char_rows = txn.query(S.CHARS).where(col("doc") == doc).run()
        authors = {r["author"] for r in char_rows if r["ch"]}
        return DocumentFeatures(
            doc=doc,
            name=row["name"],
            creator=row["creator"],
            state=row["state"],
            size=row["size"],
            created_at=row["created_at"],
            last_modified=row["last_modified"],
            n_authors=len(authors),
            tokens=tokenize(text),
        )

    def extract_all(self) -> list[DocumentFeatures]:
        """Features for every document, in creation order.

        One snapshot covers the whole corpus sweep, so the features of
        document N and document 1 describe the same database state.
        """
        with self.db.snapshot() as snap:
            rows = sorted(snap.query(S.DOCUMENTS).run(),
                          key=lambda r: r["created_at"])
            return [self.extract(r["doc"], txn=snap) for r in rows]
