"""Visual mining: the document-space map (the programmatic Fig. 2).

§3: "The information visualization plug-in provides a graphical overview
of all documents ... It is possible to navigate the document and meta
data dimensions to gain an understanding of the entire document space."

:class:`VisualMiner` lays all documents out in 2-D: documents are nodes,
content similarity above a threshold becomes weighted edges, and a
deterministic force-directed embedding (networkx spring layout) assigns
coordinates.  The result, a :class:`DocumentMap`, supports the "dimension
navigation" of the demo — grouping/colouring by creator, state, size,
cluster — plus an ASCII scatter render for terminals.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx
import numpy as np

from ..db import Database
from ..errors import MiningError
from .features import DocumentFeatures, FeatureExtractor
from .textmine import (
    TfIdfModel,
    cosine_similarity_matrix,
    fit_tfidf,
    kmeans_clusters,
    top_terms,
)

#: Metadata dimensions the map can be grouped by.
DIMENSIONS = ("creator", "state", "cluster", "size_band")


@dataclass
class MapPoint:
    """One document in the map."""

    doc: object
    name: str
    x: float
    y: float
    creator: str
    state: str
    size: int
    cluster: int
    top_terms: list = field(default_factory=list)

    def size_band(self) -> str:
        """Coarse size bucket: small / medium / large."""
        if self.size < 100:
            return "small"
        if self.size < 1000:
            return "medium"
        return "large"


@dataclass
class DocumentMap:
    """The laid-out document space."""

    points: list
    edges: list                     # (doc_a, doc_b, similarity)
    model: TfIdfModel

    def point_of(self, doc) -> MapPoint:
        """The map point of one document (raises if absent)."""
        for point in self.points:
            if point.doc == doc:
                return point
        raise MiningError(f"document {doc} not in map")

    def group_by(self, dimension: str) -> dict:
        """Group points along a metadata dimension (demo navigation)."""
        if dimension not in DIMENSIONS:
            raise MiningError(f"unknown dimension {dimension!r}")
        groups: dict[object, list[MapPoint]] = {}
        for point in self.points:
            if dimension == "creator":
                key: object = point.creator
            elif dimension == "state":
                key = point.state
            elif dimension == "cluster":
                key = point.cluster
            else:
                key = point.size_band()
            groups.setdefault(key, []).append(point)
        return groups

    def stats(self) -> dict:
        """Aggregate numbers for the overview pane."""
        return {
            "documents": len(self.points),
            "similarity_edges": len(self.edges),
            "clusters": len({p.cluster for p in self.points}),
            "creators": len({p.creator for p in self.points}),
            "total_chars": sum(p.size for p in self.points),
        }

    def ascii_scatter(self, *, width: int = 60, height: int = 18,
                      label: str = "cluster") -> str:
        """Terminal scatter plot; each document renders as a digit/letter."""
        if not self.points:
            return "(empty document space)"
        xs = np.array([p.x for p in self.points])
        ys = np.array([p.y for p in self.points])
        x_min, x_max = xs.min(), xs.max()
        y_min, y_max = ys.min(), ys.max()
        x_span = (x_max - x_min) or 1.0
        y_span = (y_max - y_min) or 1.0
        grid = [[" "] * width for __ in range(height)]
        for point in self.points:
            cx = int((point.x - x_min) / x_span * (width - 1))
            cy = int((point.y - y_min) / y_span * (height - 1))
            if label == "cluster":
                mark = str(point.cluster % 10)
            else:
                mark = point.creator[:1] or "?"
            grid[height - 1 - cy][cx] = mark
        border = "+" + "-" * width + "+"
        body = "\n".join("|" + "".join(row) + "|" for row in grid)
        return f"{border}\n{body}\n{border}"


class VisualMiner:
    """Build :class:`DocumentMap` objects from a database."""

    def __init__(self, db: Database, *, seed: int = 7) -> None:
        self.db = db
        self.seed = seed
        self.extractor = FeatureExtractor(db)

    def build_map(self, *, similarity_threshold: float = 0.15,
                  n_clusters: int | None = None) -> DocumentMap:
        """Lay out the entire document space."""
        features = self.extractor.extract_all()
        return self.build_map_for(features,
                                  similarity_threshold=similarity_threshold,
                                  n_clusters=n_clusters)

    def build_map_for(self, features: list[DocumentFeatures], *,
                      similarity_threshold: float = 0.15,
                      n_clusters: int | None = None) -> DocumentMap:
        """Lay out an explicit feature list (tests/benches)."""
        model = fit_tfidf(features)
        n = len(features)
        if n == 0:
            return DocumentMap([], [], model)
        sims = cosine_similarity_matrix(model)
        graph = nx.Graph()
        for feat in features:
            graph.add_node(feat.doc)
        edges = []
        for i in range(n):
            for j in range(i + 1, n):
                sim = float(sims[i, j])
                if sim >= similarity_threshold:
                    graph.add_edge(features[i].doc, features[j].doc,
                                   weight=sim)
                    edges.append((features[i].doc, features[j].doc, sim))
        positions = nx.spring_layout(graph, seed=self.seed)
        if n_clusters is None:
            n_clusters = max(1, min(5, n // 3 or 1))
        labels = kmeans_clusters(model, n_clusters, seed=self.seed)
        points = []
        for i, feat in enumerate(features):
            x, y = positions[feat.doc]
            points.append(MapPoint(
                doc=feat.doc, name=feat.name, x=float(x), y=float(y),
                creator=feat.creator, state=feat.state, size=feat.size,
                cluster=labels[i],
                top_terms=top_terms(model, feat.doc, 3),
            ))
        return DocumentMap(points, edges, model)
