"""Visual and text mining over the document space (Fig. 2)."""

from .features import DocumentFeatures, FeatureExtractor, tokenize
from .textmine import (
    TfIdfModel,
    cosine_similarity_matrix,
    fit_tfidf,
    kmeans_clusters,
    similar_documents,
    top_terms,
)
from .visual import DIMENSIONS, DocumentMap, MapPoint, VisualMiner

__all__ = [
    "DIMENSIONS",
    "DocumentFeatures",
    "DocumentMap",
    "FeatureExtractor",
    "MapPoint",
    "TfIdfModel",
    "VisualMiner",
    "cosine_similarity_matrix",
    "fit_tfidf",
    "kmeans_clusters",
    "similar_documents",
    "tokenize",
    "top_terms",
]
