"""Text mining: tf-idf vectors, similarity, clustering, salient terms.

The backing analytics for both the visual-mining view (document
similarity drives the layout) and the search engine's relevance ranking.
Implemented directly on numpy — vocabulary, sparse-ish tf-idf rows, cosine
similarity and a small deterministic k-means.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .features import DocumentFeatures


@dataclass
class TfIdfModel:
    """A fitted tf-idf space over a document collection."""

    vocabulary: dict                 # term -> column index
    matrix: np.ndarray               # (n_docs, n_terms), L2-normalised rows
    doc_ids: list                    # row index -> doc Oid
    idf: np.ndarray                  # (n_terms,)

    @property
    def n_docs(self) -> int:
        return self.matrix.shape[0]

    def row_of(self, doc) -> int:
        """Matrix row index of a document."""
        return self.doc_ids.index(doc)

    def vector_for_tokens(self, tokens: list[str]) -> np.ndarray:
        """Project arbitrary tokens (e.g. a query) into the space."""
        vec = np.zeros(len(self.vocabulary))
        for token in tokens:
            idx = self.vocabulary.get(token)
            if idx is not None:
                vec[idx] += 1.0
        if vec.any():
            vec = vec * self.idf
            norm = np.linalg.norm(vec)
            if norm > 0:
                vec /= norm
        return vec


def fit_tfidf(features: list[DocumentFeatures]) -> TfIdfModel:
    """Fit a tf-idf model over the given documents."""
    vocabulary: dict[str, int] = {}
    for feat in features:
        for term in feat.term_counts:
            vocabulary.setdefault(term, len(vocabulary))
    n_docs, n_terms = len(features), len(vocabulary)
    counts = np.zeros((n_docs, n_terms))
    for i, feat in enumerate(features):
        for term, count in feat.term_counts.items():
            counts[i, vocabulary[term]] = count
    df = (counts > 0).sum(axis=0)
    # Smoothed idf, never negative.
    idf = np.log((1.0 + n_docs) / (1.0 + df)) + 1.0 if n_terms else \
        np.zeros(0)
    matrix = counts * idf
    norms = np.linalg.norm(matrix, axis=1, keepdims=True)
    norms[norms == 0] = 1.0
    matrix = matrix / norms
    return TfIdfModel(vocabulary, matrix, [f.doc for f in features], idf)


def cosine_similarity_matrix(model: TfIdfModel) -> np.ndarray:
    """Pairwise cosine similarities (rows are L2-normalised already)."""
    return model.matrix @ model.matrix.T


def top_terms(model: TfIdfModel, doc, k: int = 5) -> list[str]:
    """The ``k`` most characteristic terms of one document."""
    row = model.matrix[model.row_of(doc)]
    if not row.any():
        return []
    inverse = {idx: term for term, idx in model.vocabulary.items()}
    order = np.argsort(row)[::-1]
    return [inverse[int(i)] for i in order[:k] if row[int(i)] > 0]


def similar_documents(model: TfIdfModel, doc, k: int = 5) -> list[tuple]:
    """The ``k`` most similar other documents as ``(doc, score)``."""
    sims = cosine_similarity_matrix(model)
    row = sims[model.row_of(doc)].copy()
    row[model.row_of(doc)] = -1.0
    order = np.argsort(row)[::-1]
    return [
        (model.doc_ids[int(i)], float(row[int(i)]))
        for i in order[:k] if row[int(i)] > 0
    ]


def kmeans_clusters(model: TfIdfModel, k: int, *,
                    seed: int = 7, iterations: int = 25) -> list[int]:
    """Deterministic k-means over the tf-idf rows; returns labels.

    Small and self-contained (scipy's kmeans is avoided to keep control of
    determinism across platforms).
    """
    data = model.matrix
    n = data.shape[0]
    if n == 0:
        return []
    k = max(1, min(k, n))
    rng = np.random.default_rng(seed)
    centers = data[rng.choice(n, size=k, replace=False)].copy()
    labels = np.zeros(n, dtype=int)
    for __ in range(iterations):
        distances = np.linalg.norm(
            data[:, None, :] - centers[None, :, :], axis=2)
        new_labels = distances.argmin(axis=1)
        if (new_labels == labels).all():
            labels = new_labels
            break
        labels = new_labels
        for j in range(k):
            members = data[labels == j]
            if len(members):
                centers[j] = members.mean(axis=0)
    return [int(label) for label in labels]
