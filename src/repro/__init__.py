"""TeNDaX reproduction: a collaborative database-based real-time editor.

A from-scratch Python reproduction of *TeNDaX, a Collaborative
Database-Based Real-Time Editor System* (Leone, Hodel-Widmer, Boehlen,
Dittrich; EDBT 2006).  Text lives natively in a multi-user transactional
database — every character is a row with full metadata — and everything
the demo paper shows is built on top: collaborative editing and layout,
local/global undo, in-document workflows, dynamic folders, data lineage,
visual/text mining and metadata search.

Quick start::

    from repro import CollaborationServer, EditorClient

    server = CollaborationServer()
    server.register_user("ana")
    server.register_user("ben")

    ana = server.connect("ana", os_name="windows-xp")
    doc = ana.create_document("hello", text="Hello world")

    ben = server.connect("ben", os_name="linux")
    editor = EditorClient(ben, doc.doc)
    editor.move_end()
    editor.type("!")            # a real-time database transaction
    print(doc.text())           # ana sees it immediately

See ``examples/`` for full scenarios and ``benchmarks/`` for the
experiment suite documented in EXPERIMENTS.md.
"""

from .clock import SimulatedClock, SystemClock
from .collab import CollaborationServer, EditingSession, EditorClient
from .db import Database, col, column, recover, recover_file
from .errors import TendaxError
from .folders import DynamicFolderManager, StaticFolderManager
from .ids import Oid
from .lineage import LineageGraph
from .meta import MetadataCollector, PropertyManager
from .mining import VisualMiner
from .process import TaskList, WorkflowManager
from .search import SearchEngine
from .security import AccessController, PrincipalRegistry
from .text import (
    DocumentHandle,
    DocumentStore,
    NoteManager,
    ObjectManager,
    StructureManager,
    StyleManager,
    VersionManager,
)

__version__ = "1.0.0"

__all__ = [
    "AccessController",
    "CollaborationServer",
    "Database",
    "DocumentHandle",
    "DocumentStore",
    "DynamicFolderManager",
    "EditingSession",
    "EditorClient",
    "LineageGraph",
    "MetadataCollector",
    "NoteManager",
    "ObjectManager",
    "Oid",
    "PrincipalRegistry",
    "PropertyManager",
    "SearchEngine",
    "SimulatedClock",
    "StaticFolderManager",
    "StructureManager",
    "StyleManager",
    "SystemClock",
    "TaskList",
    "TendaxError",
    "VersionManager",
    "VisualMiner",
    "WorkflowManager",
    "col",
    "column",
    "recover",
    "recover_file",
]
