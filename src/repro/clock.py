"""Time sources.

Everything in the library that needs "now" takes a :class:`Clock` so tests
and benchmarks can run deterministically.  Two implementations are provided:

* :class:`SystemClock` — wraps :func:`time.time` for real deployments.
* :class:`SimulatedClock` — a manually advanced clock for deterministic
  tests and workload simulation.  Every call to :meth:`SimulatedClock.now`
  nudges time forward by a configurable ``tick`` so consecutive events get
  strictly increasing timestamps even if the test never advances time
  explicitly.

Timestamps are floats (seconds since the epoch), matching ``time.time``.
"""

from __future__ import annotations

import time
from typing import Protocol


class Clock(Protocol):
    """Anything that can report the current time in epoch seconds."""

    def now(self) -> float:
        """Return the current time as seconds since the epoch."""
        ...


class SystemClock:
    """Real wall-clock time."""

    def now(self) -> float:
        """Current wall-clock time in epoch seconds."""
        return time.time()

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return "SystemClock()"


class SimulatedClock:
    """A deterministic, manually advanced clock.

    Parameters
    ----------
    start:
        Initial epoch time.  Defaults to 2006-03-26 00:00:00 UTC, the first
        day of EDBT 2006, purely as a recognisable fixed point.
    tick:
        Amount (seconds) by which :meth:`now` auto-advances on every call.
        A small non-zero default guarantees strictly increasing timestamps.
    """

    #: 2006-03-26 00:00:00 UTC.
    DEFAULT_START = 1143331200.0

    def __init__(self, start: float = DEFAULT_START, tick: float = 0.001) -> None:
        if tick < 0:
            raise ValueError("tick must be >= 0")
        self._now = float(start)
        self._tick = float(tick)

    def now(self) -> float:
        """Current simulated time; auto-advances by ``tick``."""
        current = self._now
        self._now += self._tick
        return current

    def peek(self) -> float:
        """Return the current time without advancing it."""
        return self._now

    def advance(self, seconds: float) -> float:
        """Move time forward by ``seconds`` and return the new time."""
        if seconds < 0:
            raise ValueError("cannot move time backwards")
        self._now += seconds
        return self._now

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"SimulatedClock(now={self._now!r}, tick={self._tick!r})"
