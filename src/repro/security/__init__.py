"""Security: principals (users/roles) and fine-grained access control."""

from .acl import PERMISSIONS, AccessController, install_acl_schema
from .principals import PrincipalRegistry, install_principal_schema

__all__ = [
    "PERMISSIONS",
    "AccessController",
    "PrincipalRegistry",
    "install_acl_schema",
    "install_principal_schema",
]
