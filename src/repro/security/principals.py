"""Principals: users and roles, stored in the database.

The paper gathers metadata "on character level (author, roles, ...)" and
routes workflow tasks "to specific users or roles".  Principals are rows:
``tx_users``, ``tx_roles`` and the ``tx_user_roles`` membership relation.
"""

from __future__ import annotations

from ..db import Database, col, column
from ..errors import SecurityError, UnknownPrincipalError

USERS = "tx_users"
ROLES = "tx_roles"
USER_ROLES = "tx_user_roles"


def install_principal_schema(db: Database) -> None:
    """Create the principal tables (idempotent)."""
    if not db.has_table(USERS):
        db.create_table(USERS, [
            column("name", "str"),
            column("display", "str", default=""),
            column("created_at", "timestamp"),
        ], key="name")
    if not db.has_table(ROLES):
        db.create_table(ROLES, [
            column("name", "str"),
            column("description", "str", default=""),
            column("created_at", "timestamp"),
        ], key="name")
    if not db.has_table(USER_ROLES):
        db.create_table(USER_ROLES, [
            column("user", "str"),
            column("role", "str"),
        ])
        db.create_index(USER_ROLES, "user")
        db.create_index(USER_ROLES, "role")


class PrincipalRegistry:
    """Create and resolve users, roles and memberships."""

    def __init__(self, db: Database) -> None:
        self.db = db
        install_principal_schema(db)

    # -- users ---------------------------------------------------------------

    def add_user(self, name: str, display: str = "") -> str:
        """Register a user; returns the name (the principal id)."""
        if not name:
            raise SecurityError("user name must be non-empty")
        self.db.insert(USERS, {
            "name": name, "display": display or name,
            "created_at": self.db.now(),
        })
        return name

    def has_user(self, name: str) -> bool:
        """Whether the user exists."""
        return self.db.query(USERS).where(col("name") == name).count() > 0

    def require_user(self, name: str) -> dict:
        """Fetch a user row, raising if unknown."""
        row = self.db.query(USERS).where(col("name") == name).first()
        if row is None:
            raise UnknownPrincipalError(f"no user {name!r}")
        return dict(row)

    def users(self) -> list[str]:
        """All user names, sorted."""
        return sorted(r["name"] for r in self.db.query(USERS).run())

    # -- roles ----------------------------------------------------------------

    def add_role(self, name: str, description: str = "") -> str:
        """Register a role; returns its name."""
        if not name:
            raise SecurityError("role name must be non-empty")
        self.db.insert(ROLES, {
            "name": name, "description": description,
            "created_at": self.db.now(),
        })
        return name

    def has_role(self, name: str) -> bool:
        """Whether the role exists."""
        return self.db.query(ROLES).where(col("name") == name).count() > 0

    def roles(self) -> list[str]:
        """All role names, sorted."""
        return sorted(r["name"] for r in self.db.query(ROLES).run())

    # -- membership --------------------------------------------------------------

    def assign_role(self, user: str, role: str) -> None:
        """Put ``user`` into ``role``."""
        self.require_user(user)
        if not self.has_role(role):
            raise UnknownPrincipalError(f"no role {role!r}")
        if role in self.roles_of(user):
            return
        self.db.insert(USER_ROLES, {"user": user, "role": role})

    def remove_role(self, user: str, role: str) -> None:
        """Take ``user`` out of ``role``."""
        rows = (self.db.query(USER_ROLES)
                .where((col("user") == user) & (col("role") == role)).run())
        for row in rows:
            self.db.delete(USER_ROLES, row.rowid)

    def roles_of(self, user: str) -> set[str]:
        """The roles a user holds."""
        rows = self.db.query(USER_ROLES).where(col("user") == user).run()
        return {r["role"] for r in rows}

    def members_of(self, role: str) -> set[str]:
        """The users holding a role."""
        rows = self.db.query(USER_ROLES).where(col("role") == role).run()
        return {r["user"] for r in rows}

    def principals_of(self, user: str) -> set[str]:
        """The user plus every role they hold (for ACL matching)."""
        return {user} | self.roles_of(user)
