"""Fine-grained access control: document ACLs and character-range guards.

Two granularities, matching the paper's "fine-grained security":

* **Document permissions** (``tx_acl``): READ / WRITE / LAYOUT / STRUCTURE /
  GRANT / WORKFLOW per document, granted to users or roles.  A document
  with no grant for a permission is *open* for that permission (the demo's
  LAN-party default); as soon as one grant exists, the permission is
  restricted to grantees (plus the creator, who always retains everything).
* **Range protections** (``tx_char_protection``): a set of character OIDs
  can be locked against editing, so a reviewer can freeze a paragraph while
  the rest of the document stays editable.  Because the protection names
  character OIDs, it survives any amount of concurrent editing elsewhere.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..db import Database, col, column
from ..errors import AccessDenied, SecurityError
from ..ids import Oid
from ..text import dbschema as S
from ..text.document import DocumentHandle
from .principals import PrincipalRegistry

ACL = "tx_acl"
CHAR_PROTECTION = "tx_char_protection"

#: Grantable document permissions.
PERMISSIONS = ("read", "write", "layout", "structure", "grant", "workflow")


def install_acl_schema(db: Database) -> None:
    """Create the ACL tables (idempotent)."""
    if not db.has_table(ACL):
        db.create_table(ACL, [
            column("entry", "oid"),
            column("doc", "oid"),
            column("principal", "str"),     # user or role name
            column("perm", "str"),
            column("granted_by", "str"),
            column("at", "timestamp"),
        ], key="entry")
        db.create_index(ACL, "doc")
    if not db.has_table(CHAR_PROTECTION):
        db.create_table(CHAR_PROTECTION, [
            column("protection", "oid"),
            column("doc", "oid"),
            column("char_oids", "json"),    # list of protected char OIDs
            column("exempt", "json"),       # principals allowed through
            column("mode", "str", default="write"),  # "write" | "read"
            column("created_by", "str"),
            column("at", "timestamp"),
            column("active", "bool", default=True),
        ], key="protection")
        db.create_index(CHAR_PROTECTION, "doc")


class AccessController:
    """Grant, revoke and enforce document and range permissions."""

    def __init__(self, db: Database, principals: PrincipalRegistry) -> None:
        self.db = db
        self.principals = principals
        install_acl_schema(db)
        S.install_text_schema(db)

    # ------------------------------------------------------------------
    # Document-level ACL
    # ------------------------------------------------------------------

    def grant(self, doc: Oid, principal: str, perm: str,
              granted_by: str) -> Oid:
        """Grant ``perm`` on ``doc`` to a user or role.

        Requires the grantor to hold ``grant`` (or be the creator).
        """
        self._check_perm_name(perm)
        self.require(doc, granted_by, "grant")
        entry = self.db.new_oid("acl")
        self.db.insert(ACL, {
            "entry": entry, "doc": doc, "principal": principal,
            "perm": perm, "granted_by": granted_by, "at": self.db.now(),
        })
        return entry

    def revoke(self, doc: Oid, principal: str, perm: str,
               revoked_by: str) -> int:
        """Remove matching grants; returns how many were removed."""
        self._check_perm_name(perm)
        self.require(doc, revoked_by, "grant")
        rows = (self.db.query(ACL)
                .where((col("doc") == doc)
                       & (col("principal") == principal)
                       & (col("perm") == perm))
                .run())
        for row in rows:
            self.db.delete(ACL, row.rowid)
        return len(rows)

    def grants_for(self, doc: Oid) -> list[dict]:
        """All ACL entries of a document."""
        return [dict(r) for r in
                self.db.query(ACL).where(col("doc") == doc).run()]

    def allowed(self, doc: Oid, user: str, perm: str) -> bool:
        """Does ``user`` hold ``perm`` on ``doc``?

        The creator always does.  If nobody has been granted ``perm``, the
        document is open for it; otherwise the user (or one of their
        roles) must appear among the grantees.
        """
        self._check_perm_name(perm)
        creator = self._creator_of(doc)
        if creator is not None and user == creator:
            return True
        grants = [g for g in self.grants_for(doc) if g["perm"] == perm]
        if not grants:
            return True
        principals = self.principals.principals_of(user)
        return any(g["principal"] in principals for g in grants)

    def require(self, doc: Oid, user: str, perm: str) -> None:
        """Raise :class:`~repro.errors.AccessDenied` unless allowed."""
        if not self.allowed(doc, user, perm):
            raise AccessDenied(
                f"user {user!r} lacks {perm!r} on document {doc}"
            )

    def _creator_of(self, doc: Oid) -> str | None:
        row = self.db.query(S.DOCUMENTS).where(col("doc") == doc).first()
        return None if row is None else row["creator"]

    @staticmethod
    def _check_perm_name(perm: str) -> None:
        if perm not in PERMISSIONS:
            raise SecurityError(f"unknown permission {perm!r}")

    # ------------------------------------------------------------------
    # Character-range protections
    # ------------------------------------------------------------------

    def protect_range(self, handle: DocumentHandle, pos: int, count: int,
                      created_by: str, *, exempt: Iterable[str] = (),
                      mode: str = "write") -> Oid:
        """Guard ``count`` characters at ``pos``.

        ``mode="write"`` locks the characters against edits;
        ``mode="read"`` additionally *hides* them from non-exempt readers
        (see :meth:`redacted_text`) — the paper's character-level security
        settings.  ``exempt`` principals (users or roles) — and the
        protector — pass through.  Requires ``grant`` on the document.
        """
        if mode not in ("write", "read"):
            raise SecurityError(f"unknown protection mode {mode!r}")
        self.require(handle.doc, created_by, "grant")
        oids = handle.char_oids()[pos:pos + count]
        if len(oids) != count:
            raise SecurityError("protection range outside document")
        protection = self.db.new_oid("prot")
        self.db.insert(CHAR_PROTECTION, {
            "protection": protection, "doc": handle.doc,
            "char_oids": [str(oid) for oid in oids],
            "exempt": sorted({created_by, *exempt}), "mode": mode,
            "created_by": created_by, "at": self.db.now(),
        })
        return protection

    def release_protection(self, protection: Oid, released_by: str) -> None:
        """Deactivate a range protection."""
        row = (self.db.query(CHAR_PROTECTION)
               .where(col("protection") == protection).first())
        if row is None:
            raise SecurityError(f"no protection {protection}")
        self.require(row["doc"], released_by, "grant")
        self.db.update(CHAR_PROTECTION, row.rowid, {"active": False})

    def protections_for(self, doc: Oid) -> list[dict]:
        """Active range protections of a document."""
        rows = (self.db.query(CHAR_PROTECTION)
                .where(col("doc") == doc).run())
        return [dict(r) for r in rows if r["active"]]

    def protected_oids(self, doc: Oid, user: str) -> set[Oid]:
        """Character OIDs ``user`` may *not* edit in ``doc``.

        Read protection implies write protection.
        """
        principals = self.principals.principals_of(user)
        locked: set[Oid] = set()
        for row in self.protections_for(doc):
            if principals & set(row["exempt"]):
                continue
            locked.update(Oid.parse(s) for s in row["char_oids"])
        return locked

    def hidden_oids(self, doc: Oid, user: str) -> set[Oid]:
        """Character OIDs ``user`` may not even *see* (mode="read")."""
        principals = self.principals.principals_of(user)
        hidden: set[Oid] = set()
        for row in self.protections_for(doc):
            if row["mode"] != "read":
                continue
            if principals & set(row["exempt"]):
                continue
            hidden.update(Oid.parse(s) for s in row["char_oids"])
        return hidden

    def redacted_text(self, handle: DocumentHandle, user: str,
                      mask: str = "\u2588") -> str:
        """The document text as ``user`` is allowed to see it.

        Characters under a read protection the user is not exempt from
        render as ``mask``.
        """
        hidden = self.hidden_oids(handle.doc, user)
        if not hidden:
            return handle.text()
        from ..text import chars as C
        rows = C.doc_char_rows(self.db, handle.doc)
        return "".join(
            mask if oid in hidden else rows[oid]["ch"]
            for oid in handle.char_oids()
        )

    def check_chars_editable(self, doc: Oid, user: str,
                             char_oids: Sequence[Oid]) -> None:
        """Raise if any of ``char_oids`` is protected against ``user``."""
        locked = self.protected_oids(doc, user)
        if locked:
            blocked = [oid for oid in char_oids if oid in locked]
            if blocked:
                raise AccessDenied(
                    f"user {user!r} may not edit {len(blocked)} protected "
                    f"character(s) in document {doc}"
                )
