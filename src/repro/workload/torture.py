"""Torture typists: model-tracked editing agents for crash/fault schedules.

:class:`SimulatedTypist` drives realistic load but models nothing — fine
for soak tests, useless for crash equivalence, where the harness must
predict the post-recovery text *independently of the engine*.  A
:class:`ModelTypist` therefore mirrors every operation it performs onto a
shared plain-Python string (:class:`SharedText`).  Operations are whole
transactions, and the deterministic scheduler serialises them, so after
every *successful* step the model equals the document; when a step dies
mid-flight to an injected crash, the recovered document must equal either
the model (commit record never became durable) or the model with the
in-flight operation applied (crash after the commit point) — and the WAL
says which.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..collab.session import EditingSession
    from ..ids import Oid

#: Small word pool: enough variety to exercise chains, stable across runs.
_WORDS = ("data", "base", "text", "edit", "char", "sync", "node", "row ")


@dataclass(frozen=True)
class PlannedOp:
    """One editing operation, expressed against the plain-text model."""

    kind: str            # "insert" | "delete"
    pos: int
    text: str = ""
    count: int = 0


class SharedText:
    """The replicas' ground truth: one string, mutated only on success."""

    def __init__(self, text: str = "") -> None:
        self.text = text

    def apply(self, op: PlannedOp) -> str:
        if op.kind == "insert":
            self.text = self.text[:op.pos] + op.text + self.text[op.pos:]
        else:
            self.text = self.text[:op.pos] + self.text[op.pos + op.count:]
        return self.text

    def applied(self, op: PlannedOp) -> str:
        """The text ``op`` *would* produce, without mutating the model."""
        if op.kind == "insert":
            return self.text[:op.pos] + op.text + self.text[op.pos:]
        return self.text[:op.pos] + self.text[op.pos + op.count:]


class ModelTypist:
    """Drives one session with seeded ops mirrored onto a shared model.

    Designed as a :class:`~repro.faults.scheduler.DeterministicScheduler`
    actor: :meth:`step` is one atomic operation (one transaction).  The
    in-flight op is published as :attr:`pending` before the engine sees
    it, so a crash harness can compute both candidate outcomes.
    """

    def __init__(self, session: "EditingSession", doc: "Oid", *,
                 seed: int, model: SharedText,
                 insert_weight: int = 3) -> None:
        self.session = session
        self.doc = doc
        self.rng = random.Random(seed)
        self.model = model
        self.insert_weight = insert_weight
        self.pending: PlannedOp | None = None
        self.ops_done = 0

    def plan(self) -> PlannedOp:
        """Choose the next operation against the current model text."""
        length = len(self.model.text)
        if length >= 4 and self.rng.randrange(self.insert_weight + 1) == 0:
            count = self.rng.randint(1, min(6, length))
            pos = self.rng.randint(0, length - count)
            return PlannedOp("delete", pos, count=count)
        word = _WORDS[self.rng.randrange(len(_WORDS))]
        return PlannedOp("insert", self.rng.randint(0, length), text=word)

    def step(self) -> PlannedOp:
        """Plan, execute against the session, then commit to the model.

        If the engine raises (e.g. ``CrashSignal``), :attr:`pending`
        still names the in-flight operation and the model is untouched.
        """
        op = self.plan()
        self.pending = op
        if op.kind == "insert":
            self.session.insert(self.doc, op.pos, op.text)
        else:
            self.session.delete(self.doc, op.pos, op.count)
        self.pending = None
        self.model.apply(op)
        self.ops_done += 1
        return op
