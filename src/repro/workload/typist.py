"""Simulated typists: deterministic editor-driving agents.

A typist drives an :class:`~repro.collab.editor.EditorClient` with a
seeded random mix of the operations §2 enumerates — "writing and deleting
text (characters), copying and pasting, defining layout ..." — so the
LAN-party scenario and the benchmarks get reproducible multi-user load
with a realistic operation profile.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..collab.editor import EditorClient
from ..errors import TendaxError
from .corpus import COMMON, TOPICS, zipf_choice

#: Default operation mix (weights).
DEFAULT_MIX = {
    "type_word": 60,
    "type_punctuation": 10,
    "backspace": 10,
    "move": 10,
    "copy_paste": 5,
    "style": 5,
}


@dataclass
class TypistStats:
    """What one typist did."""

    operations: int = 0
    chars_typed: int = 0
    chars_deleted: int = 0
    pastes: int = 0
    style_ops: int = 0
    moves: int = 0
    errors: int = 0
    by_kind: dict = field(default_factory=dict)


class SimulatedTypist:
    """Drives one editor with a weighted random operation mix."""

    def __init__(self, editor: EditorClient, *, seed: int,
                 topic: str = "editing",
                 mix: dict | None = None) -> None:
        self.editor = editor
        self.rng = random.Random(seed)
        self.topic = topic
        self.mix = dict(mix or DEFAULT_MIX)
        self.stats = TypistStats()
        self._styles: list = []

    def add_style(self, style) -> None:
        """Give the typist a style OID it may apply."""
        self._styles.append(style)

    # ------------------------------------------------------------------

    def step(self) -> str:
        """Perform one operation; returns its kind."""
        kinds = list(self.mix)
        weights = [self.mix[k] for k in kinds]
        kind = self.rng.choices(kinds, weights=weights, k=1)[0]
        try:
            getattr(self, f"_op_{kind}")()
        except TendaxError:
            # Racing editors can invalidate a precomputed position;
            # a real editor would just beep.
            self.stats.errors += 1
        self.stats.operations += 1
        self.stats.by_kind[kind] = self.stats.by_kind.get(kind, 0) + 1
        return kind

    def run(self, n_ops: int) -> TypistStats:
        """Perform ``n_ops`` operations; returns the stats."""
        for __ in range(n_ops):
            self.step()
        return self.stats

    # -- operations ------------------------------------------------------

    def _random_position(self) -> int:
        return self.rng.randint(0, self.editor.handle.length())

    def _op_type_word(self) -> None:
        pool = TOPICS[self.topic] if self.rng.random() < 0.6 else COMMON
        word = zipf_choice(self.rng, pool) + " "
        self.editor.type(word)
        self.stats.chars_typed += len(word)

    def _op_type_punctuation(self) -> None:
        mark = self.rng.choice([". ", ", ", "! ", "? ", "\n"])
        self.editor.type(mark)
        self.stats.chars_typed += len(mark)

    def _op_backspace(self) -> None:
        deleted = self.editor.backspace(self.rng.randint(1, 4))
        self.stats.chars_deleted += deleted

    def _op_move(self) -> None:
        self.editor.move_to(self._random_position())
        self.stats.moves += 1

    def _op_copy_paste(self) -> None:
        length = self.editor.handle.length()
        if length < 4:
            return
        count = self.rng.randint(2, min(12, length))
        pos = self.rng.randint(0, length - count)
        self.editor.select(pos, count)
        self.editor.copy()
        self.editor.move_to(self._random_position())
        pasted = self.editor.paste()
        self.stats.pastes += 1
        self.stats.chars_typed += len(pasted)

    def _op_style(self) -> None:
        if not self._styles:
            return
        length = self.editor.handle.length()
        if length < 2:
            return
        count = self.rng.randint(1, min(10, length))
        pos = self.rng.randint(0, length - count)
        self.editor.select(pos, count)
        self.editor.style_selection(self.rng.choice(self._styles))
        self.editor.clear_selection()
        self.stats.style_ops += 1
