"""The archival portal: a large, mostly-read document corpus.

The scaling workload behind experiment group D9.  A portal holds up to
100k documents, almost all *archived* — ingested whole through
:meth:`~repro.text.document.DocumentStore.import_archived`-shaped rows
(text in ``props["archived_text"]``, no per-character chain) — plus a
small live tail of chain-backed documents that editors still type into.

Everything derived (inverted index, dynamic folders, metadata counters)
hangs off the commit changefeed, and this module exists to prove that
the maintenance cost is governed by the *change rate*, never the corpus
size: after ingest, traffic is Zipf-distributed reads (searches, folder
listings, document opens) with a trickle of versioned re-uploads, and
:func:`run_portal_traffic` asserts through the consumers' own counters
that no query triggered a full rebuild or folder rescan.
"""

from __future__ import annotations

import random
from bisect import bisect_left
from dataclasses import dataclass, field
from time import perf_counter

from ..db import Database, col
from ..feed import MaintenanceWorker
from ..folders import DynamicFolderManager, HasProperty, StateIs
from ..ids import Oid
from ..search import SearchEngine
from ..text import DocumentStore
from ..text import dbschema as S
from .corpus import TOPICS, generate_text


@dataclass
class PortalSpec:
    """Parameters for a generated portal."""

    n_docs: int = 1000
    #: Chain-backed documents still being edited (the live tail).
    live_docs: int = 10
    #: Word-count range of the archived texts (kept short: the point of
    #: the workload is corpus *count*, not document length).
    words_per_doc: tuple = (12, 40)
    #: Archived documents ingested per transaction.
    ingest_batch: int = 500
    creators: tuple = ("ana", "ben", "cleo", "dan")
    states: tuple = ("draft", "review", "final")
    seed: int = 9


class _ZipfPicker:
    """O(log n) rank-weighted choice over a fixed population."""

    def __init__(self, n: int) -> None:
        self._cdf: list[float] = []
        acc = 0.0
        for rank in range(n):
            acc += 1.0 / (rank + 1)
            self._cdf.append(acc)

    def pick(self, rng: random.Random) -> int:
        target = rng.random() * self._cdf[-1]
        return min(bisect_left(self._cdf, target), len(self._cdf) - 1)


@dataclass
class Portal:
    """A built portal: the engine plus its feed-driven consumers."""

    db: Database
    store: DocumentStore
    search: SearchEngine
    folders: DynamicFolderManager
    worker: MaintenanceWorker
    #: Document OIDs in ingest order; traffic popularity is Zipf over
    #: this order (rank 0 = hottest).
    docs: list = field(default_factory=list)
    spec: PortalSpec = field(default_factory=PortalSpec)

    def close(self) -> None:
        self.search.index.close()
        self.search.meta.close()
        self.folders.close()


def build_portal(spec: PortalSpec | None = None) -> Portal:
    """Build the portal with consumers attached *before* ingest.

    Every ingested row therefore flows through the changefeed and the
    deferred index absorbs the corpus incrementally (batched key
    lookups), not via a rebuild scan — the same path later traffic uses.
    """
    spec = spec or PortalSpec()
    rng = random.Random(spec.seed)
    db = Database("portal")
    store = DocumentStore(db, log_reads=False)
    search = SearchEngine(db)
    folders = DynamicFolderManager(db)
    folders.create_folder("finals", StateIs("final"))
    folders.create_folder("database shelf", HasProperty("topic", "database"))
    worker = MaintenanceWorker(db)
    worker.register("search-index", search.index.maintain,
                    sub=search.index.subscription)

    topics = tuple(TOPICS)
    docs: list[Oid] = []
    n_archived = max(0, spec.n_docs - spec.live_docs)
    now = db.now()
    remaining = n_archived
    while remaining > 0:
        take = min(remaining, spec.ingest_batch)
        with db.transaction() as txn:
            for __ in range(take):
                i = len(docs)
                topic = topics[i % len(topics)]
                text = generate_text(
                    rng, topic, rng.randint(*spec.words_per_doc))
                doc = db.new_oid("doc")
                creator = rng.choice(spec.creators)
                txn.insert(S.DOCUMENTS, {
                    "doc": doc, "name": f"{topic}-archive-{i:06d}",
                    "creator": creator, "created_at": now,
                    "state": rng.choice(spec.states),
                    "size": len(text), "last_modified": now,
                    "last_modified_by": creator,
                    "props": {"archived_text": text, "topic": topic,
                              "upload_count": 1},
                })
                docs.append(doc)
        remaining -= take
    for i in range(spec.live_docs):
        topic = topics[i % len(topics)]
        text = generate_text(rng, topic, rng.randint(*spec.words_per_doc))
        handle = store.create(f"{topic}-live-{i:03d}",
                              rng.choice(spec.creators), text=text,
                              props={"topic": topic})
        docs.append(handle.doc)
        handle.close()
    worker.drain(max_rounds=200)
    # Warm the per-term impact lists over the portal vocabulary (a few
    # hundred words).  A real portal does exactly this on startup: the
    # first-query-per-term build cost is a one-time O(df log df) that
    # belongs to ingest, not to the query-latency budget traffic is
    # measured against.
    for topic in topics:
        for term in TOPICS[topic]:
            search.index.top_docs(term, 10)
    return Portal(db=db, store=store, search=search, folders=folders,
                  worker=worker, docs=docs, spec=spec)


def upload_version(portal: Portal, doc: Oid, text: str, user: str) -> int:
    """Re-upload an archived document: new blob + a VERSIONS row.

    One transaction updates the archived text (which re-dirties the
    index through the feed) and appends the denormalised version
    snapshot; returns the document's new upload count.
    """
    db = portal.db
    now = db.now()
    with db.transaction() as txn:
        row = txn.query(S.DOCUMENTS).where(col("doc") == doc).first()
        if row is None:
            from ..errors import UnknownDocumentError
            raise UnknownDocumentError(f"no document {doc}")
        txn.get_for_update(S.DOCUMENTS, row.rowid)
        props = dict(row["props"] or {})
        count = int(props.get("upload_count", 0)) + 1
        props["archived_text"] = text
        props["upload_count"] = count
        txn.update(S.DOCUMENTS, row.rowid, {
            "props": props, "size": len(text),
            "last_modified": now, "last_modified_by": user,
        })
        txn.insert(S.VERSIONS, {
            "version": db.new_oid("ver"), "doc": doc,
            "name": f"upload-{count}", "author": user, "created_at": now,
            "char_oids": [], "text": text,
        })
    return count


@dataclass
class PortalTrafficReport:
    """What a traffic run did and how fast the read paths were."""

    operations: int = 0
    searches: int = 0
    listings: int = 0
    opens: int = 0
    uploads: int = 0
    search_seconds: list = field(default_factory=list)
    listing_seconds: list = field(default_factory=list)
    #: Full-corpus passes observed *during* traffic (must stay 0: the
    #: whole point of the changefeed refactor).
    index_rebuilds: int = 0
    folder_rescans: int = 0
    drain_rounds: int = 0

    @staticmethod
    def _p50(samples: list) -> float:
        if not samples:
            return 0.0
        ordered = sorted(samples)
        return ordered[len(ordered) // 2]

    @property
    def search_p50(self) -> float:
        return self._p50(self.search_seconds)

    @property
    def listing_p50(self) -> float:
        return self._p50(self.listing_seconds)


def run_portal_traffic(portal: Portal, *, n_ops: int = 300,
                       seed: int = 11,
                       maintenance_every: int = 5) -> PortalTrafficReport:
    """Zipf read traffic with a trickle of writes, maintenance riding
    along every ``maintenance_every`` operations.

    Op mix: ~40% term searches, ~20% folder listings, ~30% document
    opens (metadata key lookup), ~10% versioned re-uploads.  The report
    carries p50 latencies for the two paths the D9 acceptance gates on,
    and the full-pass counters observed while traffic ran.
    """
    rng = random.Random(seed)
    picker = _ZipfPicker(len(portal.docs))
    #: Zipf over each topic's vocabulary: hot terms repeat, as real
    #: query logs do, so per-term caches actually amortise.
    term_pickers = {t: _ZipfPicker(len(TOPICS[t])) for t in TOPICS}
    report = PortalTrafficReport()
    topics = tuple(TOPICS)
    index = portal.search.index
    rebuilds_before = index.stats["full_builds"]
    rescans_before = sum(f.stats["full_scans"]
                         for f in portal.folders.folders())
    folder_names = [f.name for f in portal.folders.folders()]
    for op_no in range(n_ops):
        roll = rng.random()
        if roll < 0.40:
            topic = rng.choice(topics)
            term = TOPICS[topic][term_pickers[topic].pick(rng)]
            started = perf_counter()
            portal.search.search(term, limit=10)
            report.search_seconds.append(perf_counter() - started)
            report.searches += 1
        elif roll < 0.60:
            folder = portal.folders.folder(rng.choice(folder_names))
            started = perf_counter()
            folder.contents(limit=50)
            report.listing_seconds.append(perf_counter() - started)
            report.listings += 1
        elif roll < 0.90:
            doc = portal.docs[picker.pick(rng)]
            portal.store.meta(doc)
            report.opens += 1
        else:
            doc = portal.docs[picker.pick(rng)]
            topic = topics[op_no % len(topics)]
            text = generate_text(rng, topic, rng.randint(10, 30))
            upload_version(portal, doc, text, rng.choice(portal.spec.creators))
            report.uploads += 1
        report.operations += 1
        if maintenance_every and (op_no + 1) % maintenance_every == 0:
            portal.worker.run_once()
    report.drain_rounds = portal.worker.drain(max_rounds=200)
    report.index_rebuilds = index.stats["full_builds"] - rebuilds_before
    report.folder_rescans = sum(
        f.stats["full_scans"] for f in portal.folders.folders()
    ) - rescans_before
    return report
