"""Workload generation: corpora, simulated typists, torture, scenarios."""

from .corpus import (
    TOPICS,
    CorpusSpec,
    GeneratedDoc,
    generate_corpus,
    generate_text,
    load_corpus,
)
from .scenarios import (
    DEFAULT_PARTY,
    KnowledgeBase,
    LanPartyReport,
    build_knowledge_base,
    run_lan_party,
    run_traced_duet,
)
from .torture import ModelTypist, PlannedOp, SharedText
from .typist import DEFAULT_MIX, SimulatedTypist, TypistStats

__all__ = [
    "DEFAULT_MIX",
    "DEFAULT_PARTY",
    "CorpusSpec",
    "GeneratedDoc",
    "KnowledgeBase",
    "LanPartyReport",
    "ModelTypist",
    "PlannedOp",
    "SharedText",
    "SimulatedTypist",
    "TOPICS",
    "TypistStats",
    "build_knowledge_base",
    "generate_corpus",
    "generate_text",
    "load_corpus",
    "run_lan_party",
    "run_traced_duet",
]
