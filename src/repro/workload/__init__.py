"""Workload generation: corpora, simulated typists, torture, scenarios."""

from .corpus import (
    TOPICS,
    CorpusSpec,
    GeneratedDoc,
    generate_corpus,
    generate_text,
    load_corpus,
)
from .portal import (
    Portal,
    PortalSpec,
    PortalTrafficReport,
    build_portal,
    run_portal_traffic,
    upload_version,
)
from .scenarios import (
    DEFAULT_PARTY,
    KnowledgeBase,
    LanPartyReport,
    build_knowledge_base,
    run_lan_party,
    run_traced_duet,
)
from .torture import ModelTypist, PlannedOp, SharedText
from .typist import DEFAULT_MIX, SimulatedTypist, TypistStats

__all__ = [
    "DEFAULT_MIX",
    "DEFAULT_PARTY",
    "CorpusSpec",
    "GeneratedDoc",
    "KnowledgeBase",
    "LanPartyReport",
    "ModelTypist",
    "PlannedOp",
    "Portal",
    "PortalSpec",
    "PortalTrafficReport",
    "SharedText",
    "SimulatedTypist",
    "TOPICS",
    "TypistStats",
    "build_knowledge_base",
    "build_portal",
    "generate_corpus",
    "generate_text",
    "load_corpus",
    "run_lan_party",
    "run_portal_traffic",
    "run_traced_duet",
    "upload_version",
]
