"""Ready-made scenarios: the LAN-party and a populated knowledge base.

:func:`run_lan_party` reproduces the demo's headline: several editors on
different (simulated) operating systems concurrently editing one document,
with layout, copy-paste and undo in the mix — then verifies that every
editor converged to the same text and that the character chain is intact.

:func:`build_knowledge_base` populates a server with a topic corpus,
reading/editing activity and cross-document pastes; it is the shared
fixture for the dynamic-folder, lineage, mining and search demos/benches.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..collab.editor import EditorClient
from ..collab.server import CollaborationServer
from .corpus import CorpusSpec, load_corpus
from .typist import SimulatedTypist

#: The demo's editor fleet (§3: Windows XP, Linux, Mac OS X).
DEFAULT_PARTY = (
    ("ana", "windows-xp"),
    ("ben", "linux"),
    ("cleo", "macosx"),
)


@dataclass
class LanPartyReport:
    """Outcome of a LAN-party run."""

    participants: list
    operations: int
    elapsed_seconds: float
    final_length: int
    converged: bool
    chain_intact: bool
    per_user: dict = field(default_factory=dict)
    op_latencies: list = field(default_factory=list)

    @property
    def ops_per_second(self) -> float:
        if self.elapsed_seconds <= 0:
            return float("inf")
        return self.operations / self.elapsed_seconds


def run_lan_party(
    *,
    participants=DEFAULT_PARTY,
    rounds: int = 50,
    seed: int = 7,
    server: CollaborationServer | None = None,
    with_styles: bool = True,
    measure_latency: bool = False,
) -> LanPartyReport:
    """Run the word-processing LAN-party scenario.

    ``rounds`` operations per participant are interleaved round-robin
    (the in-process equivalent of concurrent typing).  Returns a report
    with convergence verification.
    """
    server = server or CollaborationServer()
    for user, __ in participants:
        server.register_user(user)
    host_user = participants[0][0]
    host = server.connect(host_user, os_name=participants[0][1])
    shared = host.create_document("lan-party", text="TeNDaX demo. ")

    editors: list[EditorClient] = [EditorClient(host, shared.doc)]
    for i, (user, os_name) in enumerate(participants[1:], start=1):
        session = server.connect(user, os_name=os_name)
        editors.append(EditorClient(session, shared.doc))

    typists = []
    for i, editor in enumerate(editors):
        typist = SimulatedTypist(editor, seed=seed + i)
        if with_styles:
            style = server.styles.define_style(
                f"style-{editor.user}", {"bold": i % 2 == 0,
                                         "italic": i % 2 == 1},
                editor.user,
            )
            typist.add_style(style)
        typists.append(typist)

    latencies: list[float] = []
    start = time.perf_counter()
    for __ in range(rounds):
        for typist in typists:
            if measure_latency:
                t0 = time.perf_counter()
                typist.step()
                latencies.append(time.perf_counter() - t0)
            else:
                typist.step()
    elapsed = time.perf_counter() - start

    texts = {editor.user: editor.text() for editor in editors}
    converged = len(set(texts.values())) == 1
    chain_intact = editors[0].handle.check_integrity() == []
    return LanPartyReport(
        participants=[u for u, __ in participants],
        operations=sum(t.stats.operations for t in typists),
        elapsed_seconds=elapsed,
        final_length=editors[0].handle.length(),
        converged=converged,
        chain_intact=chain_intact,
        per_user={t.editor.user: t.stats for t in typists},
        op_latencies=latencies,
    )


def run_traced_duet(
    *,
    text: str = "causal trace",
    faults=None,
    slow_threshold: float | None = None,
    max_traces: int = 1024,
    wal_path: str | None = None,
    server: CollaborationServer | None = None,
):
    """Two editors alternating keystrokes on one document, fully traced.

    The fixed scenario behind ``repro trace``, the trace-export golden
    test and ``tools/trace_smoke.py``: ana and ben type ``text`` one
    character each in turn, every keystroke producing one causal trace
    (editor op → txn commit → WAL fsync → dispatch → remote deliver →
    apply).  Deterministic — same text, same trace/span id sequence —
    except for wall-clock timestamps.  Held notifications (if ``faults``
    holds any) are drained before returning.

    Returns ``(server, buffer)`` where ``buffer`` is the
    :class:`~repro.obs.TraceBuffer` holding every finished trace.
    """
    from ..obs.export import TraceBuffer

    server = server or CollaborationServer(faults=faults,
                                           wal_path=wal_path)
    buffer = TraceBuffer(max_traces=max_traces,
                         slow_threshold=slow_threshold,
                         registry=server.db.obs.registry)
    server.db.obs.tracer.add_sink(buffer)
    server.register_user("ana")
    server.register_user("ben")
    ana = server.connect("ana", os_name="linux")
    shared = ana.create_document("duet", text="")
    ben = server.connect("ben", os_name="macosx")
    editors = [EditorClient(ana, shared.doc), EditorClient(ben, shared.doc)]
    for i, char in enumerate(text):
        editor = editors[i % 2]
        editor.move_end()
        editor.type(char)
    server.delivery.drain()
    return server, buffer


@dataclass
class KnowledgeBase:
    """The populated server of :func:`build_knowledge_base`."""

    server: CollaborationServer
    handles: list
    users: tuple


def build_knowledge_base(
    *,
    n_docs: int = 20,
    seed: int = 7,
    n_reads: int = 40,
    n_pastes: int = 10,
    server: CollaborationServer | None = None,
) -> KnowledgeBase:
    """Populate a server with documents, reads and cross-document pastes."""
    import random
    rng = random.Random(seed)
    server = server or CollaborationServer()
    spec = CorpusSpec(n_docs=n_docs, seed=seed)
    for user in spec.creators:
        server.register_user(user)
    handles = load_corpus(server.documents, spec)

    # Reading activity (drives dynamic folders and "most read").
    for __ in range(n_reads):
        user = rng.choice(spec.creators)
        handle = rng.choice(handles)
        server.documents.open(handle.doc, user).close()

    # Cross-document pastes (drive lineage and "most cited").
    sessions = {user: server.connect(user) for user in spec.creators}
    for __ in range(n_pastes):
        user = rng.choice(spec.creators)
        session = sessions[user]
        src, dst = rng.sample(handles, 2)
        src_handle = session.open(src.doc)
        dst_handle = session.open(dst.doc)
        if src_handle.length() < 10:
            continue
        count = rng.randint(5, min(40, src_handle.length()))
        pos = rng.randint(0, src_handle.length() - count)
        session.copy(src.doc, pos, count)
        session.paste(dst.doc, rng.randint(0, dst_handle.length()))
    return KnowledgeBase(server=server, handles=handles,
                         users=spec.creators)
