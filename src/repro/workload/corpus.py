"""Synthetic corpus generation.

Deterministic (seeded) generators for realistic-ish document text: a small
topic-partitioned vocabulary sampled with a Zipf-like distribution, so
that documents about the same topic share terms — which gives the mining
and search subsystems real structure to find.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

#: Topic -> characteristic vocabulary.  Shared words live in COMMON.
TOPICS: dict[str, list[str]] = {
    "database": """
        database transaction table index query schema commit rollback
        recovery lock row column storage engine log checkpoint cursor
        isolation durability consistency
    """.split(),
    "editing": """
        document editor character paragraph style layout template cursor
        selection clipboard paste undo redo revision structure heading
        formatting typing margin
    """.split(),
    "workflow": """
        workflow task process assignment routing approval translation
        verification deadline participant role cooperation notification
        escalation delegation milestone
    """.split(),
    "business": """
        report budget revenue quarter forecast meeting contract customer
        invoice project strategy market analysis risk proposal
    """.split(),
}

COMMON = """
    also based between during each early following further given high
    include large later line made make many more most much need new now
    number often only order other over part per place point present
    result same several small system time under used using value way
    well work year
""".split()


@dataclass
class CorpusSpec:
    """Parameters for a generated corpus."""

    n_docs: int = 20
    words_per_doc: tuple = (30, 120)
    creators: tuple = ("ana", "ben", "cleo", "dan")
    states: tuple = ("draft", "review", "final")
    topics: tuple = tuple(TOPICS)
    seed: int = 7


def zipf_choice(rng: random.Random, words: list[str]) -> str:
    """Pick a word with a Zipf-ish (rank-weighted) distribution."""
    n = len(words)
    # P(rank r) ~ 1/(r+1); sample via inverse CDF on precomputed weights.
    total = sum(1.0 / (r + 1) for r in range(n))
    target = rng.random() * total
    acc = 0.0
    for r in range(n):
        acc += 1.0 / (r + 1)
        if acc >= target:
            return words[r]
    return words[-1]


def generate_sentence(rng: random.Random, topic: str,
                      n_words: int) -> str:
    """One sentence mixing topic vocabulary with common filler."""
    words = []
    topic_words = TOPICS[topic]
    for __ in range(n_words):
        pool = topic_words if rng.random() < 0.6 else COMMON
        words.append(zipf_choice(rng, pool))
    sentence = " ".join(words)
    return sentence[0].upper() + sentence[1:] + "."


def generate_text(rng: random.Random, topic: str, n_words: int) -> str:
    """Multi-sentence text of roughly ``n_words`` words."""
    sentences = []
    remaining = n_words
    while remaining > 0:
        take = min(remaining, rng.randint(5, 14))
        sentences.append(generate_sentence(rng, topic, take))
        remaining -= take
    return " ".join(sentences)


@dataclass
class GeneratedDoc:
    """Description of one generated document."""

    name: str
    creator: str
    state: str
    topic: str
    text: str


def generate_corpus(spec: CorpusSpec) -> list[GeneratedDoc]:
    """Generate document descriptions (no database side effects)."""
    rng = random.Random(spec.seed)
    docs = []
    for i in range(spec.n_docs):
        topic = spec.topics[i % len(spec.topics)]
        creator = rng.choice(spec.creators)
        n_words = rng.randint(*spec.words_per_doc)
        docs.append(GeneratedDoc(
            name=f"{topic}-doc-{i:03d}",
            creator=creator,
            state=rng.choice(spec.states),
            topic=topic,
            text=generate_text(rng, topic, n_words),
        ))
    return docs


def load_corpus(store, spec: CorpusSpec) -> list:
    """Create the generated documents in a DocumentStore.

    Returns the list of handles.  Creators are used as the acting users,
    and states are applied after creation (two metadata events per doc,
    just like real life).
    """
    handles = []
    for doc in generate_corpus(spec):
        handle = store.create(doc.name, doc.creator, text=doc.text,
                              props={"topic": doc.topic})
        if doc.state != "draft":
            store.set_state(handle.doc, doc.state, doc.creator)
        handles.append(handle)
    return handles
