"""Search over content, structure and creation-process metadata."""

from .engine import SearchEngine, SearchResult
from .index import InvertedIndex
from .query import SearchQuery, parse_query
from .ranking import RANKINGS, Ranker

__all__ = [
    "RANKINGS",
    "InvertedIndex",
    "Ranker",
    "SearchEngine",
    "SearchQuery",
    "SearchResult",
    "parse_query",
]
