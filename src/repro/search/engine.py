"""The search engine facade.

§3: "Documents and parts of documents can either be found based on the
document content, or structure, or document creation process meta data."

* **content** — terms against the incrementally maintained inverted index;
* **metadata** — ``field:value`` filters evaluated on document profiles
  (creator, state, name, readers, authors, user-defined properties);
* **structure** — :meth:`SearchEngine.search_structure` matches structure
  node labels and returns the node's text context.

Results are document profiles ranked by any of the paper's options.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter

from ..db import Database, col
from ..ids import Oid
from ..meta import MetadataCollector
from ..mining.features import FeatureExtractor
from ..text import dbschema as S
from .index import InvertedIndex
from .query import SearchQuery, parse_query
from .ranking import RANKINGS, Ranker, relevance_scores


@dataclass
class SearchResult:
    """One hit."""

    doc: Oid
    name: str
    score: float
    profile: dict = field(default_factory=dict, repr=False)
    snippet: str = ""


class SearchEngine:
    """Content + structure + metadata search with pluggable ranking."""

    def __init__(self, db: Database,
                 meta: MetadataCollector | None = None) -> None:
        self.db = db
        self.meta = meta or MetadataCollector(db)
        self.index = InvertedIndex(db)
        self.ranker = Ranker(self.meta)
        self.extractor = FeatureExtractor(db)
        registry = db.obs.registry
        self._m_queries = registry.counter("search.queries")
        self._m_query_seconds = registry.histogram("search.query_seconds")
        self._m_index_hits = registry.counter("search.index_hits")
        self._m_structure = registry.counter("search.structure_queries")

    # ------------------------------------------------------------------
    # Main entry point
    # ------------------------------------------------------------------

    def search(self, query: str | SearchQuery, *,
               ranking: str = "relevance",
               limit: int = 20) -> list[SearchResult]:
        """Run a query; returns ranked results."""
        started = perf_counter()
        self._m_queries.inc()
        if isinstance(query, str):
            query = parse_query(query)

        # Candidate selection and profile building run inside one
        # snapshot transaction: the scan over N candidate documents is a
        # long read-only pass, and a typist committing halfway through
        # must neither stall it (no locks) nor make profile fields
        # disagree across candidates (one commit point for all queries).
        # The index refresh is pinned to the *same* snapshot, so index
        # candidates and profile rows cannot come from different commit
        # points mid-typing-burst.
        # Single-term relevance queries without filters take the
        # impact-ordered fast path: the index hands back the exact
        # top-k (score and tie-break order match the ranker), so only
        # ``limit`` profiles are built — cost independent of how many
        # documents contain the term.
        fast_single = (ranking == "relevance" and not query.filters
                       and len(query.terms) == 1 and not query.phrases)
        with self.db.snapshot() as snap:
            self.index.ensure_fresh(txn=snap)
            if fast_single:
                scored = self.index.top_docs(query.terms[0], limit)
                self._m_index_hits.inc(len(scored))
                relevance = dict(scored)
                ordered = []
                for doc, __ in scored:
                    profile = self._light_profile(
                        doc, need_readers=False, need_authors=False,
                        txn=snap)
                    if profile is not None:
                        ordered.append(profile)
                return self._materialise(ordered, relevance, query,
                                         limit, started)
            if query.terms or query.phrases:
                candidates = self.index.matching_docs(query.all_terms)
                for phrase in query.phrases:
                    candidates &= self.index.phrase_docs(phrase)
                self._m_index_hits.inc(len(candidates))
            else:
                # Metadata-only query: the just-refreshed index knows
                # the full corpus — no DOCUMENTS rescan on this path.
                candidates = self.index.all_docs()
            # Build *light* profiles: the document row plus only the
            # derived metadata the filters and the ranking actually
            # consult.  (The full consolidated profile scans every
            # character row of a document — far too expensive per search
            # candidate.)
            filter_fields = {f[0] for f in query.filters}
            need_readers = "reader" in filter_fields or ranking == "most_read"
            need_authors = bool({"author", "writer"} & filter_fields)
            profiles = []
            for doc in candidates:
                profile = self._light_profile(
                    doc, need_readers=need_readers,
                    need_authors=need_authors, txn=snap)
                if profile is not None and \
                        self._passes_filters(profile, query.filters):
                    profiles.append(profile)
        relevance = relevance_scores(
            self.index, query.all_terms, {p["doc"] for p in profiles})
        ordered = self.ranker.sort(profiles, ranking, relevance=relevance)
        return self._materialise(ordered, relevance, query, limit, started)

    def _materialise(self, ordered: list, relevance: dict,
                     query: SearchQuery, limit: int,
                     started: float) -> list[SearchResult]:
        """Turn ranked profiles into the top-``limit`` result objects."""
        results = []
        for profile in ordered[:limit]:
            results.append(SearchResult(
                doc=profile["doc"],
                name=profile["name"],
                score=relevance.get(profile["doc"], 0.0),
                profile=profile,
                snippet=self._snippet(profile["doc"], query.all_terms),
            ))
        self._m_query_seconds.observe(perf_counter() - started)
        return results

    def _light_profile(self, doc: Oid, *, need_readers: bool,
                       need_authors: bool, txn=None) -> dict | None:
        """Document-row metadata, with derived fields only on demand.

        Callers who want the complete creation-process record should use
        :meth:`~repro.meta.collector.MetadataCollector.document_profile`.
        """
        reader = txn if txn is not None else self.db
        row = reader.query(S.DOCUMENTS).where(col("doc") == doc).first()
        if row is None:
            return None
        profile = dict(row)
        profile["props"] = dict(row["props"] or {})
        if need_readers:
            profile["readers"] = sorted(self.meta.readers_of(doc, txn=txn))
        if need_authors:
            profile["authors"] = sorted(
                self.meta.author_contributions(doc, txn=txn))
        return profile

    def _passes_filters(self, profile: dict, filters: list) -> bool:
        for fieldname, value in filters:
            if fieldname == "creator":
                if profile["creator"] != value:
                    return False
            elif fieldname == "state":
                if profile["state"] != value:
                    return False
            elif fieldname == "name":
                if value.lower() not in profile["name"].lower():
                    return False
            elif fieldname == "reader":
                if value not in profile["readers"]:
                    return False
            elif fieldname in ("author", "writer"):
                if value not in profile["authors"]:
                    return False
            elif fieldname == "prop":
                key, sep, expected = value.partition("=")
                props = profile["props"]
                if key not in props:
                    return False
                if sep and str(props[key]) != expected:
                    return False
        return True

    def _snippet(self, doc: Oid, terms: list, *, radius: int = 30) -> str:
        """A text window around the first matching term."""
        text = self.index.cached_text(doc)
        if not text:
            return ""
        lowered = text.lower()
        best = -1
        for term in terms:
            pos = lowered.find(term)
            if pos >= 0 and (best < 0 or pos < best):
                best = pos
        if best < 0:
            return text[: 2 * radius].strip()
        start = max(0, best - radius)
        end = min(len(text), best + radius)
        prefix = "..." if start > 0 else ""
        suffix = "..." if end < len(text) else ""
        return f"{prefix}{text[start:end].strip()}{suffix}"

    # ------------------------------------------------------------------
    # Structure search
    # ------------------------------------------------------------------

    def search_structure(self, term: str, *,
                         kind: str | None = None) -> list[dict]:
        """Find structure nodes whose label contains ``term``.

        Returns node rows augmented with their document name — "parts of
        documents can ... be found based on ... structure".
        """
        self._m_structure.inc()
        needle = term.lower()
        with self.db.snapshot() as snap:
            rows = snap.query(S.STRUCTURE).run()
            names = {
                r["doc"]: r["name"] for r in snap.query(S.DOCUMENTS).run()
            }
        hits = []
        for row in rows:
            if kind is not None and row["kind"] != kind:
                continue
            if needle in row["label"].lower():
                hit = dict(row)
                hit["doc_name"] = names.get(row["doc"], str(row["doc"]))
                hits.append(hit)
        hits.sort(key=lambda r: (r["doc_name"], r["pos"]))
        return hits

    # ------------------------------------------------------------------
    # Utilities
    # ------------------------------------------------------------------

    def rankings(self) -> tuple:
        """The supported ranking option names."""
        return RANKINGS

    def render_results(self, results: list) -> str:
        """Printable result list (demo output)."""
        if not results:
            return "(no results)"
        lines = []
        for i, result in enumerate(results, 1):
            lines.append(
                f"{i:>2}. {result.name}  [score {result.score:.3f}] "
                f"— {result.snippet}"
            )
        return "\n".join(lines)
