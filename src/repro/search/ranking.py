"""Result ranking options.

§3: "The search result can be ranked according to different ranking
options, e.g. 'most cited', 'newest' etc."  Citation here is TeNDaX's own
notion: a document is cited when content is copied *out of* it into
another document (the copy log), which only a database-backed editor can
know.
"""

from __future__ import annotations

import math
from typing import Callable

from ..meta import MetadataCollector
from .index import InvertedIndex

RANKINGS = ("relevance", "newest", "oldest", "most_cited", "most_read",
            "largest")


def relevance_scores(index: InvertedIndex, terms: list[str],
                     docs: set) -> dict:
    """tf-idf scores for ``docs`` against the query terms."""
    n = max(index.doc_count(), 1)
    scores: dict = {doc: 0.0 for doc in docs}
    for term in terms:
        postings = index.postings(term)
        if not postings:
            continue
        idf = math.log((1 + n) / (1 + len(postings))) + 1.0
        for doc, tf in postings.items():
            if doc in scores:
                length = max(index.doc_length(doc), 1)
                scores[doc] += (tf / length) * idf
    return scores


class Ranker:
    """Produces sort keys for each ranking option."""

    def __init__(self, meta: MetadataCollector) -> None:
        self.meta = meta

    def sort(self, docs: list, ranking: str, *,
             relevance: dict | None = None) -> list:
        """Order ``docs`` (a list of profile dicts) by the ranking option."""
        if ranking not in RANKINGS:
            from ..errors import SearchError
            raise SearchError(f"unknown ranking {ranking!r}")
        key: Callable
        reverse = True
        if ranking == "relevance":
            rel = relevance or {}
            key = lambda p: (rel.get(p["doc"], 0.0), p["last_modified"])
        elif ranking == "newest":
            key = lambda p: p["last_modified"]
        elif ranking == "oldest":
            key = lambda p: p["created_at"]
            reverse = False
        elif ranking == "most_cited":
            citations = self.meta.citation_counts()
            key = lambda p: (citations.get(p["doc"], 0), p["last_modified"])
        elif ranking == "most_read":
            key = lambda p: (len(p.get("readers", ())),
                             p["last_modified"])
        else:  # largest
            key = lambda p: p["size"]
        return sorted(docs, key=key, reverse=reverse)
