"""Inverted index over document content, kept fresh incrementally.

Documents are indexed from their reconstructed text.  A commit trigger on
the character table marks edited documents *dirty*; the next query
re-indexes exactly those — so index maintenance cost is proportional to
what changed, not to corpus size (the same event-driven pattern as dynamic
folders).
"""

from __future__ import annotations

from collections import defaultdict
from typing import TYPE_CHECKING

from ..db import Database
from ..ids import Oid
from ..mining.features import FeatureExtractor, tokenize
from ..text import dbschema as S

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..db.transaction import Change, Transaction


class InvertedIndex:
    """term -> {doc: token positions}, with incremental refresh.

    Postings store token *positions*, so term frequency (their count)
    and phrase adjacency queries both come from one structure.
    """

    def __init__(self, db: Database) -> None:
        self.db = db
        self.extractor = FeatureExtractor(db)
        self._postings: dict[str, dict[Oid, list[int]]] = defaultdict(dict)
        self._doc_terms: dict[Oid, dict[str, int]] = {}
        self._doc_len: dict[Oid, int] = {}
        self._doc_text: dict[Oid, str] = {}
        self._dirty: set[Oid] = set()
        self._known_docs: set[Oid] = set()
        self._trigger = db.triggers.on_commit(S.CHARS, self._on_commit)
        self.stats = {"reindexed_docs": 0, "full_builds": 0}
        self.rebuild()

    def close(self) -> None:
        """Stop tracking commits (the index goes stale)."""
        self._trigger.remove()

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------

    def _on_commit(self, txn: "Transaction",
                   changes: "list[Change]") -> None:
        for change in changes:
            row = change.row
            if row is not None and row.get("ch"):
                self._dirty.add(row["doc"])

    def rebuild(self) -> None:
        """Index every document from scratch."""
        self._postings.clear()
        self._doc_terms.clear()
        self._doc_len.clear()
        self._doc_text.clear()
        self._known_docs = {
            r["doc"] for r in self.db.query(S.DOCUMENTS).select("doc").run()
        }
        for doc in self._known_docs:
            self._index_doc(doc)
        self._dirty.clear()
        self.stats["full_builds"] += 1

    def ensure_fresh(self) -> int:
        """Re-index dirty documents; returns how many were refreshed."""
        current = {
            r["doc"] for r in self.db.query(S.DOCUMENTS).select("doc").run()
        }
        new_docs = current - self._known_docs
        self._known_docs = current
        dirty = (self._dirty | new_docs) & current
        for doc in dirty:
            self._unindex_doc(doc)
            self._index_doc(doc)
        refreshed = len(dirty)
        self._dirty.clear()
        return refreshed

    def _index_doc(self, doc: Oid) -> None:
        text = self.extractor.document_text(doc)
        self._doc_text[doc] = text
        positions: dict[str, list[int]] = defaultdict(list)
        for i, token in enumerate(tokenize(text)):
            positions[token].append(i)
        self._doc_terms[doc] = {t: len(p) for t, p in positions.items()}
        self._doc_len[doc] = sum(len(p) for p in positions.values())
        for term, pos_list in positions.items():
            self._postings[term][doc] = pos_list
        self.stats["reindexed_docs"] += 1

    def _unindex_doc(self, doc: Oid) -> None:
        for term in self._doc_terms.pop(doc, {}):
            bucket = self._postings.get(term)
            if bucket is not None:
                bucket.pop(doc, None)
                if not bucket:
                    del self._postings[term]
        self._doc_len.pop(doc, None)
        self._doc_text.pop(doc, None)

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------

    def postings(self, term: str) -> dict[Oid, int]:
        """Documents containing ``term`` with term frequencies."""
        return {doc: len(positions)
                for doc, positions in self._postings.get(term, {}).items()}

    def positions(self, term: str, doc: Oid) -> list[int]:
        """Token positions of ``term`` in ``doc`` (for phrase queries)."""
        return list(self._postings.get(term, {}).get(doc, ()))

    def phrase_docs(self, phrase_terms: list[str]) -> set[Oid]:
        """Documents containing the terms *adjacently, in order*."""
        if not phrase_terms:
            return set()
        candidates = self.matching_docs(phrase_terms)
        if len(phrase_terms) == 1:
            return candidates
        hits: set[Oid] = set()
        for doc in candidates:
            starts = set(self.positions(phrase_terms[0], doc))
            for offset, term in enumerate(phrase_terms[1:], start=1):
                next_positions = set(self.positions(term, doc))
                starts = {s for s in starts if s + offset in next_positions}
                if not starts:
                    break
            if starts:
                hits.add(doc)
        return hits

    def cached_text(self, doc: Oid) -> str:
        """The document text as of the last (re)index — snippet source."""
        return self._doc_text.get(doc, "")

    def doc_count(self) -> int:
        """Number of indexed documents."""
        return len(self._doc_terms)

    def doc_length(self, doc: Oid) -> int:
        """Token count of one document (0 if unindexed)."""
        return self._doc_len.get(doc, 0)

    def vocabulary_size(self) -> int:
        """Number of distinct indexed terms."""
        return len(self._postings)

    def matching_docs(self, terms: list[str], *,
                      require_all: bool = True) -> set[Oid]:
        """Documents containing all (or any) of the terms."""
        if not terms:
            return set(self._doc_terms)
        sets = [set(self._postings.get(term, {})) for term in terms]
        if require_all:
            result = sets[0]
            for s in sets[1:]:
                result = result & s
            return result
        result = set()
        for s in sets:
            result |= s
        return result
