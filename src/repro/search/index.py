"""Inverted index over document content, maintained from the changefeed.

Documents are indexed from their reconstructed text.  The index is a
*deferred* changefeed consumer: the feed handler only records which
documents a committed batch touched (insert/update/delete alike — a
delete event's before-image names the vanished document, so deleted
docs are un-indexed instead of lingering as stale postings), and
:meth:`InvertedIndex.ensure_fresh` absorbs the recorded work when a
query actually needs freshness.  Maintenance cost is therefore
proportional to what changed, never to corpus size: the refresh does
one indexed key lookup per dirty document and **zero** full
``tx_documents`` rescans.

Internally the postings live in two segments, LSM-style: a large
*base* segment and a small *tail* that absorbs recent re-indexes.
Lookups merge both (disjoint by document, so the merge is a dict
union); the background maintenance worker folds the tail into the base
via :meth:`compact` once it outgrows ``tail_limit``, keeping per-query
merge overhead bounded at archival-portal corpus sizes.

For single-term relevance queries the index additionally keeps
*impact-ordered* posting lists (:meth:`top_docs`): per-term entries
sorted by exact single-term tf-idf order, built lazily on a term's
first top-k query and maintained incrementally on every re-index.
Serving the top *k* is then O(k) regardless of how many documents
contain the term — which is what keeps hot-term search latency flat
from 1k to 100k documents.
"""

from __future__ import annotations

import math
from bisect import bisect_left, insort
from collections import defaultdict
from typing import TYPE_CHECKING

from ..db import Database, col
from ..ids import Oid
from ..mining.features import tokenize
from ..text import chars as C
from ..text import dbschema as S

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..feed.changefeed import CommitBatch


class InvertedIndex:
    """term -> {doc: token positions}, with incremental refresh.

    Postings store token *positions*, so term frequency (their count)
    and phrase adjacency queries both come from one structure.
    """

    #: Feed consumer name (also the durable cursor key).
    CONSUMER = "search-index"

    def __init__(self, db: Database, *, tail_limit: int = 256) -> None:
        self.db = db
        self.tail_limit = tail_limit
        #: Base and tail posting segments; disjoint by document.
        self._base: dict[str, dict[Oid, list[int]]] = defaultdict(dict)
        self._tail: dict[str, dict[Oid, list[int]]] = defaultdict(dict)
        self._tail_docs: set[Oid] = set()
        self._doc_terms: dict[Oid, dict[str, int]] = {}
        self._doc_len: dict[Oid, int] = {}
        self._doc_mtime: dict[Oid, float] = {}
        self._doc_text: dict[Oid, str] = {}
        #: term -> impact-ordered entries ``(-tf/len, -mtime, doc)``,
        #: built lazily on first :meth:`top_docs` call for a term and
        #: maintained incrementally afterwards (see module docstring).
        self._impact: dict[str, list[tuple]] = {}
        #: doc -> (seq, lsn) of the newest batch that dirtied it.
        self._pending: dict[Oid, tuple[int, int]] = {}
        self._sub = db.changefeed().subscribe(
            self.CONSUMER, self._on_batch,
            tables=(S.CHARS, S.DOCUMENTS), deferred=True)
        self.stats = {"reindexed_docs": 0, "removed_docs": 0,
                      "full_builds": 0, "compactions": 0}
        self.rebuild()

    @property
    def subscription(self):
        """The index's feed subscription (lag inspection, checkpoints)."""
        return self._sub

    def close(self) -> None:
        """Stop tracking commits (the index goes stale)."""
        self._sub.close()

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------

    def _on_batch(self, batch: "CommitBatch") -> None:
        """Record the documents a commit touched; nothing is read here."""
        mark = (batch.seq, batch.lsn)
        for event in batch.events:
            row = event.row if event.row is not None else event.before
            if row is None:
                continue
            if event.table == S.CHARS:
                if row.get("ch"):
                    self._pending[row["doc"]] = mark
            else:  # DOCUMENTS: birth, metadata/archive update, or purge
                self._pending[row["doc"]] = mark

    def dirty_count(self) -> int:
        """Documents recorded dirty but not yet absorbed."""
        return len(self._pending)

    def rebuild(self) -> None:
        """Index every document from scratch (the only full scan)."""
        self._base.clear()
        self._tail.clear()
        self._tail_docs.clear()
        self._doc_terms.clear()
        self._doc_len.clear()
        self._doc_mtime.clear()
        self._doc_text.clear()
        self._impact.clear()
        with self.db.snapshot() as snap:
            for row in snap.query(S.DOCUMENTS).run():
                self._index_doc(row["doc"], snap, row)
        self._pending.clear()
        self._sub.ack(self._sub.delivered_seq)
        self.stats["full_builds"] += 1

    def ensure_fresh(self, txn=None) -> int:
        """Absorb recorded changes; returns how many docs were refreshed.

        With ``txn`` (a snapshot transaction) the refresh is *pinned*:
        every re-index reads document text at the snapshot's commit
        point, so index candidates and profile rows built inside the
        same snapshot can never disagree.  Documents dirtied by commits
        *above* the snapshot are refreshed to the snapshot's state but
        stay marked dirty — the next refresh catches them up.  Without
        ``txn`` a fresh snapshot is pinned after capturing the dirty
        set, which covers everything captured.

        Deleted documents are un-indexed: their postings, cached text
        and ``doc_count()`` contribution all vanish.
        """
        if not self._pending:
            self._sub.ack(self._sub.delivered_seq)
            return 0
        if txn is None:
            pending = dict(self._pending)
            upto = self._sub.delivered_seq
            with self.db.snapshot() as snap:
                return self._refresh(pending, snap, ack_to=upto)
        return self._refresh(dict(self._pending), txn, ack_to=None)

    def _refresh(self, pending: dict, txn, *, ack_to: int | None) -> int:
        snap_lsn = txn.snapshot_lsn
        refreshed = 0
        covered_seq = 0
        for doc, mark in pending.items():
            self._unindex_doc(doc)
            row = txn.query(S.DOCUMENTS).where(col("doc") == doc).first()
            if row is not None:
                self._index_doc(doc, txn, row)
                refreshed += 1
            else:
                self.stats["removed_docs"] += 1
            covered = ack_to is not None or snap_lsn is None \
                or mark[1] <= snap_lsn
            if covered:
                covered_seq = max(covered_seq, mark[0])
                if self._pending.get(doc) == mark:
                    del self._pending[doc]
        if ack_to is not None:
            self._sub.ack(ack_to)
        elif covered_seq:
            self._sub.ack(covered_seq)
        return refreshed

    def maintain(self) -> int:
        """One background-worker tick: absorb dirt, compact if due."""
        refreshed = self.ensure_fresh()
        if len(self._tail_docs) >= self.tail_limit:
            self.compact()
        return refreshed

    def compact(self) -> int:
        """Fold the tail segment into the base; returns docs moved."""
        moved = len(self._tail_docs)
        for term, bucket in self._tail.items():
            if bucket:
                self._base[term].update(bucket)
        self._tail.clear()
        self._tail_docs.clear()
        if moved:
            self.stats["compactions"] += 1
        return moved

    def tail_size(self) -> int:
        """Documents currently living in the tail segment."""
        return len(self._tail_docs)

    def _index_doc(self, doc: Oid, txn, row: dict) -> None:
        if row["begin_char"] is None:
            # Archived document: whole text stored in the props blob.
            text = str((row["props"] or {}).get("archived_text", ""))
        else:
            text = C.chain_text(self.db, doc, row["begin_char"], txn=txn)
        self._doc_text[doc] = text
        positions: dict[str, list[int]] = defaultdict(list)
        for i, token in enumerate(tokenize(text)):
            positions[token].append(i)
        self._doc_terms[doc] = {t: len(p) for t, p in positions.items()}
        length = sum(len(p) for p in positions.values())
        self._doc_len[doc] = length
        mtime = row["last_modified"]
        self._doc_mtime[doc] = mtime
        for term, pos_list in positions.items():
            self._tail[term][doc] = pos_list
            entries = self._impact.get(term)
            if entries is not None:
                insort(entries, self._impact_key(
                    len(pos_list), length, mtime, doc))
        self._tail_docs.add(doc)
        self.stats["reindexed_docs"] += 1

    def _unindex_doc(self, doc: Oid) -> None:
        segment = self._tail if doc in self._tail_docs else self._base
        length = self._doc_len.get(doc, 0)
        mtime = self._doc_mtime.pop(doc, 0.0)
        for term, tf in self._doc_terms.pop(doc, {}).items():
            bucket = segment.get(term)
            if bucket is not None:
                bucket.pop(doc, None)
                if not bucket:
                    del segment[term]
            entries = self._impact.get(term)
            if entries is not None:
                self._impact_remove(entries, self._impact_key(
                    tf, length, mtime, doc))
        self._tail_docs.discard(doc)
        self._doc_len.pop(doc, None)
        self._doc_text.pop(doc, None)

    # ------------------------------------------------------------------
    # Impact-ordered postings (top-k without scoring every candidate)
    # ------------------------------------------------------------------

    @staticmethod
    def _impact_key(tf: int, length: int, mtime: float, doc: Oid) -> tuple:
        """Ascending sort key = exact single-term relevance descending.

        ``tf/len * idf`` orders by ``tf/len`` for a fixed term, and the
        engine's relevance ranker tie-breaks equal scores by
        ``last_modified`` — both folded in so :meth:`top_docs` can
        return the first *k* entries verbatim.
        """
        return (-(tf / max(length, 1)), -mtime, doc)

    @staticmethod
    def _impact_remove(entries: list, key: tuple) -> None:
        pos = bisect_left(entries, key)
        if pos < len(entries) and entries[pos] == key:
            del entries[pos]

    def _impact_entries(self, term: str) -> list:
        entries = self._impact.get(term)
        if entries is None:
            entries = sorted(
                self._impact_key(len(pos), self._doc_len.get(doc, 0),
                                 self._doc_mtime.get(doc, 0.0), doc)
                for segment in (self._base, self._tail)
                for doc, pos in segment.get(term, {}).items()
            )
            self._impact[term] = entries
        return entries

    def doc_frequency(self, term: str) -> int:
        """Number of documents containing ``term`` (an O(1)-ish count)."""
        return (len(self._base.get(term, ()))
                + len(self._tail.get(term, ())))

    def top_docs(self, term: str, k: int) -> list[tuple[Oid, float]]:
        """The ``k`` best documents for one term with exact tf-idf scores.

        Served from the term's impact-ordered posting list: cost is
        O(k) after an amortised per-term build, independent of how many
        documents contain the term — the flat-latency search path the
        archival-portal benchmarks gate on.
        """
        entries = self._impact_entries(term)
        if not entries:
            return []
        n = max(self.doc_count(), 1)
        idf = math.log((1 + n) / (1 + len(entries))) + 1.0
        return [(doc, -neg_impact * idf)
                for neg_impact, __, doc in entries[:k]]

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------

    def postings(self, term: str) -> dict[Oid, int]:
        """Documents containing ``term`` with term frequencies."""
        merged = {}
        for segment in (self._base, self._tail):
            for doc, positions in segment.get(term, {}).items():
                merged[doc] = len(positions)
        return merged

    def positions(self, term: str, doc: Oid) -> list[int]:
        """Token positions of ``term`` in ``doc`` (for phrase queries)."""
        for segment in (self._tail, self._base):
            bucket = segment.get(term)
            if bucket is not None and doc in bucket:
                return list(bucket[doc])
        return []

    def phrase_docs(self, phrase_terms: list[str]) -> set[Oid]:
        """Documents containing the terms *adjacently, in order*."""
        if not phrase_terms:
            return set()
        candidates = self.matching_docs(phrase_terms)
        if len(phrase_terms) == 1:
            return candidates
        hits: set[Oid] = set()
        for doc in candidates:
            starts = set(self.positions(phrase_terms[0], doc))
            for offset, term in enumerate(phrase_terms[1:], start=1):
                next_positions = set(self.positions(term, doc))
                starts = {s for s in starts if s + offset in next_positions}
                if not starts:
                    break
            if starts:
                hits.add(doc)
        return hits

    def cached_text(self, doc: Oid) -> str:
        """The document text as of the last (re)index — snippet source."""
        return self._doc_text.get(doc, "")

    def all_docs(self) -> set[Oid]:
        """Every indexed document (the corpus, post-refresh)."""
        return set(self._doc_terms)

    def doc_count(self) -> int:
        """Number of indexed documents."""
        return len(self._doc_terms)

    def doc_length(self, doc: Oid) -> int:
        """Token count of one document (0 if unindexed)."""
        return self._doc_len.get(doc, 0)

    def vocabulary_size(self) -> int:
        """Number of distinct indexed terms."""
        return len(self._base.keys() | self._tail.keys())

    def _term_docs(self, term: str) -> set[Oid]:
        docs: set[Oid] = set(self._base.get(term, ()))
        docs.update(self._tail.get(term, ()))
        return docs

    def matching_docs(self, terms: list[str], *,
                      require_all: bool = True) -> set[Oid]:
        """Documents containing all (or any) of the terms."""
        if not terms:
            return set(self._doc_terms)
        sets = [self._term_docs(term) for term in terms]
        if require_all:
            result = sets[0]
            for s in sets[1:]:
                result = result & s
            return result
        result = set()
        for s in sets:
            result |= s
        return result
