"""Search query parsing.

A query string mixes free-text terms, quoted phrases and ``field:value``
filters::

    budget report "quarterly forecast" creator:ana state:final

Supported filter fields: ``creator``, ``state``, ``name``, ``reader``,
``author``, ``writer``, ``prop`` (``prop:key`` or ``prop:key=value``).
Quoted segments become *phrases*: their terms must appear adjacently, in
order.  Everything else is a content term.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from ..errors import QuerySyntaxError
from ..mining.features import tokenize

FILTER_FIELDS = ("creator", "state", "name", "reader", "author", "writer",
                 "prop")

_PHRASE_RE = re.compile(r'"([^"]*)"')


@dataclass
class SearchQuery:
    """A parsed query: content terms, phrases, and metadata filters."""

    terms: list = field(default_factory=list)
    phrases: list = field(default_factory=list)   # list of term lists
    filters: list = field(default_factory=list)   # (field, value) pairs
    raw: str = ""

    @property
    def is_empty(self) -> bool:
        return not self.terms and not self.phrases and not self.filters

    @property
    def all_terms(self) -> list:
        """Every content term, including those inside phrases."""
        out = list(self.terms)
        for phrase in self.phrases:
            out.extend(phrase)
        return out


def parse_query(raw: str) -> SearchQuery:
    """Parse a query string; raises on malformed filters."""
    phrases: list[list[str]] = []

    def collect_phrase(match: "re.Match[str]") -> str:
        phrase_terms = tokenize(match.group(1))
        if phrase_terms:
            phrases.append(phrase_terms)
        return " "

    remainder = _PHRASE_RE.sub(collect_phrase, raw)

    terms: list[str] = []
    filters: list[tuple[str, str]] = []
    for token in remainder.split():
        if ":" in token:
            fieldname, __, value = token.partition(":")
            fieldname = fieldname.lower()
            if fieldname in FILTER_FIELDS:
                if not value:
                    raise QuerySyntaxError(
                        f"filter {fieldname!r} needs a value"
                    )
                filters.append((fieldname, value))
                continue
            # Unknown field -> treat the whole token as content.
        terms.extend(tokenize(token))
    return SearchQuery(terms=terms, phrases=phrases, filters=filters,
                       raw=raw)
