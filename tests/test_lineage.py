"""Tests for data lineage (the programmatic Fig. 1)."""

import pytest

from repro.collab import CollaborationServer
from repro.lineage import LineageGraph, ancestry_text, ascii_lineage, to_dot


@pytest.fixture
def setup():
    server = CollaborationServer()
    server.register_user("ana")
    server.register_user("ben")
    session = server.connect("ana")
    src = session.create_document("sources", text="the quick brown fox")
    mid = session.create_document("draft", text="draft: ")
    dst = session.create_document("final", text="final: ")
    return server, session, src, mid, dst


class TestGraphConstruction:
    def test_nodes_without_edges(self, setup):
        server, *_ = setup
        graph = LineageGraph(server.db).build()
        assert graph.number_of_nodes() == 3
        assert graph.number_of_edges() == 0

    def test_paste_creates_edge(self, setup):
        server, session, src, mid, dst = setup
        session.copy(src.doc, 4, 5)
        session.paste(mid.doc, 7)
        graph = LineageGraph(server.db).build()
        assert graph.number_of_edges() == 1
        (edge,) = graph.edges(data=True)
        assert edge[0] == str(src.doc)
        assert edge[1] == str(mid.doc)
        assert edge[2]["n_chars"] == 5

    def test_external_source_node(self, setup):
        server, session, src, mid, dst = setup
        session.copy_external("cited text", "https://example.org")
        session.paste(mid.doc, 0)
        graph = LineageGraph(server.db).build()
        assert graph.nodes["https://example.org"]["kind"] == "external"

    def test_multigraph_keeps_parallel_edges(self, setup):
        server, session, src, mid, dst = setup
        for __ in range(3):
            session.copy(src.doc, 0, 3)
            session.paste(mid.doc, 0)
        graph = LineageGraph(server.db).build()
        assert graph.number_of_edges(str(src.doc), str(mid.doc)) == 3


class TestQueries:
    def test_sources_and_derivatives(self, setup):
        server, session, src, mid, dst = setup
        session.copy(src.doc, 0, 3)
        session.paste(mid.doc, 0)
        lineage = LineageGraph(server.db)
        assert len(lineage.sources_of(mid.doc)) == 1
        assert len(lineage.derivatives_of(src.doc)) == 1
        assert lineage.sources_of(src.doc) == []

    def test_transitive_closure(self, setup):
        server, session, src, mid, dst = setup
        session.copy(src.doc, 0, 5)
        session.paste(mid.doc, 0)
        session.copy(mid.doc, 0, 3)
        session.paste(dst.doc, 0)
        lineage = LineageGraph(server.db)
        assert lineage.transitive_sources(dst.doc) == {
            str(src.doc), str(mid.doc),
        }
        assert lineage.transitive_derivatives(src.doc) == {
            str(mid.doc), str(dst.doc),
        }

    def test_copied_fraction(self, setup):
        server, session, src, mid, dst = setup
        # mid is "draft: " (7 chars typed); paste 7 more -> 50% copied.
        session.copy(src.doc, 0, 7)
        session.paste(mid.doc, 7)
        lineage = LineageGraph(server.db)
        assert lineage.copied_fraction(mid.doc) == pytest.approx(0.5)
        assert lineage.copied_fraction(src.doc) == 0.0


class TestCharAncestry:
    def test_two_generation_chain(self, setup):
        server, session, src, mid, dst = setup
        session.copy(src.doc, 4, 5)        # "quick"
        pasted_mid = session.paste(mid.doc, 7)
        session.copy(mid.doc, 7, 5)        # the pasted "quick"
        pasted_dst = session.paste(dst.doc, 7)
        lineage = LineageGraph(server.db)
        chain = lineage.char_ancestry(pasted_dst[0])
        assert [step.doc for step in chain] == [
            dst.doc, mid.doc, src.doc,
        ]
        origin = lineage.origin_of(pasted_dst[0])
        assert origin.doc == src.doc

    def test_typed_char_has_trivial_chain(self, setup):
        server, session, src, mid, dst = setup
        lineage = LineageGraph(server.db)
        chain = lineage.char_ancestry(src.char_oid_at(0))
        assert len(chain) == 1

    def test_range_origins(self, setup):
        server, session, src, mid, dst = setup
        session.copy(src.doc, 0, 3)
        session.paste(mid.doc, 7)
        lineage = LineageGraph(server.db)
        origins = lineage.range_origins(mid.doc, mid.char_oids())
        assert origins["(typed here)"] == 7
        assert origins[str(src.doc)] == 3


class TestRendering:
    def test_ascii_lineage_tree(self, setup):
        server, session, src, mid, dst = setup
        session.copy(src.doc, 0, 5)
        session.paste(mid.doc, 0)
        session.copy(mid.doc, 0, 3)
        session.paste(dst.doc, 0)
        session.copy_external("xx", "wiki")
        session.paste(dst.doc, 0)
        text = ascii_lineage(LineageGraph(server.db), dst.doc)
        assert text.splitlines()[0].startswith("final (2 paste(s) in)")
        assert "<- draft: 3 chars by ana" in text
        assert "<- sources: 5 chars by ana" in text
        assert "wiki (external)" in text

    def test_dot_output(self, setup):
        server, session, src, mid, dst = setup
        session.copy(src.doc, 0, 3)
        session.paste(mid.doc, 0)
        dot = to_dot(LineageGraph(server.db).build())
        assert dot.startswith("digraph lineage {")
        assert '"%s" -> "%s"' % (src.doc, mid.doc) in dot
        assert "3 chars by ana" in dot

    def test_ancestry_text(self, setup):
        server, session, src, mid, dst = setup
        session.copy(src.doc, 0, 1)
        (oid,) = session.paste(mid.doc, 0)
        text = ancestry_text(LineageGraph(server.db), oid)
        assert "copied from" in text

    def test_unknown_document(self, setup):
        server, *_ = setup
        text = ascii_lineage(LineageGraph(server.db),
                             server.db.new_oid("doc"))
        assert "unknown document" in text

    def test_cycle_safe(self, setup):
        """A -> B and B -> A must not hang the renderer."""
        server, session, src, mid, dst = setup
        session.copy(src.doc, 0, 3)
        session.paste(mid.doc, 0)
        session.copy(mid.doc, 0, 2)
        session.paste(src.doc, 0)
        text = ascii_lineage(LineageGraph(server.db), src.doc)
        assert "draft" in text
