"""End-to-end integration: the whole §3 demo in one scenario.

One server, several users, a full day of work: collaborative editing with
layout and objects, a workflow, dynamic folders watching, copy-paste
lineage, search over the result, versioning and a crash-recovery at the
end.  Each stage asserts the cross-subsystem invariants.
"""

import pytest

from repro import (
    CollaborationServer,
    EditorClient,
    LineageGraph,
    MetadataCollector,
    SearchEngine,
    TaskList,
    VersionManager,
    VisualMiner,
    WorkflowManager,
)
from repro.clock import SimulatedClock
from repro.db import recover
from repro.folders import AccessedBy, DynamicFolderManager, StateIs
from repro.text import DocumentStore


@pytest.fixture
def world():
    clock = SimulatedClock()
    server = CollaborationServer(clock=clock)
    server.register_user("ana")
    server.register_user("ben")
    server.register_user("cleo", roles=("reviewers",))
    return clock, server


def test_full_document_lifecycle(world):
    clock, server = world
    folders = DynamicFolderManager(server.db)
    finals = folders.create_folder("finals", StateIs("final"))
    cleo_read = folders.create_folder(
        "cleo-read", AccessedBy("cleo", "read"))
    workflow = WorkflowManager(server.db, server.principals)
    tasks = TaskList(workflow)
    versions = VersionManager(server.db)
    meta = MetadataCollector(server.db)

    # --- stage 1: collaborative authoring -----------------------------------
    ana = server.connect("ana", os_name="windows-xp")
    ben = server.connect("ben", os_name="linux")
    report = ana.create_document("annual-report",
                                 text="Annual Report\n\nIntro: ")
    editor_ana = EditorClient(ana, report.doc)
    editor_ben = EditorClient(ben, report.doc)
    editor_ana.move_end()
    editor_ana.type("our systems performed well. ")
    editor_ben.move_end()
    editor_ben.type("Revenue grew substantially. ")
    assert editor_ana.text() == editor_ben.text()

    heading = server.styles.define_style(
        "h1", {"bold": True, "heading_level": 1}, "ana")
    editor_ana.select(0, 13)
    editor_ana.style_selection(heading)
    table = server.objects.insert_table(report, report.length(), "ben",
                                        rows=2, cols=2)
    server.objects.set_cell(table, 0, 0, "Q1", "ben")

    v1 = versions.tag(report, "draft-1", "ana")

    # --- stage 2: the workflow ------------------------------------------------
    process = workflow.define_process(report.doc, "review", "ana")
    review = workflow.add_task(process, "review numbers", "reviewers",
                               "ana")
    workflow.start_process(process, "ana")
    assert tasks.tasks_for("cleo")[0]["name"] == "review numbers"

    cleo = server.connect("cleo", os_name="macosx")
    cleo.open(report.doc)           # logged read -> dynamic folder reacts
    assert report.doc in cleo_read
    note = server.notes.add_note(report, 20, "verify revenue claim",
                                 "cleo")
    workflow.start_task(review, "cleo")
    workflow.complete_task(review, "cleo")
    assert workflow.process_status(process)["state"] == "completed"

    # --- stage 3: lineage via a derived document ------------------------------
    summary = ana.create_document("exec-summary", text="Summary: ")
    ana.open(report.doc)
    ana.copy(report.doc, 15, 25)
    ana.paste(summary.doc, 9)
    lineage = LineageGraph(server.db)
    assert str(report.doc) in lineage.transitive_sources(summary.doc)
    assert lineage.copied_fraction(summary.doc) > 0.5

    # --- stage 4: publishing flips the dynamic folder --------------------------
    assert report.doc not in finals
    server.documents.set_state(report.doc, "final", "ana")
    assert report.doc in finals

    # --- stage 5: search finds it, metadata is consolidated --------------------
    engine = SearchEngine(server.db, meta)
    hits = engine.search("revenue state:final")
    assert [h.name for h in hits] == ["annual-report"]
    profile = meta.document_profile(report.doc)
    assert set(profile["authors"]) == {"ana", "ben"}
    assert "cleo" in profile["readers"]
    assert profile["copies_out"] == 1
    assert profile["notes"] == 1

    # --- stage 6: the document space is minable --------------------------------
    doc_map = VisualMiner(server.db).build_map()
    assert doc_map.stats()["documents"] == 2

    # --- stage 7: versions still reconstruct history ---------------------------
    assert "performed well" in versions.text_at(v1)
    assert "Summary" not in versions.text_at(v1)

    # --- stage 8: crash and recover ---------------------------------------------
    recovered = recover(server.db.wal.records())
    recovered_store = DocumentStore(recovered)
    recovered_report = recovered_store.handle(report.doc)
    assert recovered_report.text() == report.text()
    assert recovered_report.check_integrity() == []
    # Metadata tables came back too.
    assert recovered.query("tx_copylog").count() == 1
    assert recovered.query("tx_tasks").count() == 1


def test_concurrent_documents_do_not_interfere(world):
    clock, server = world
    ana = server.connect("ana")
    ben = server.connect("ben")
    doc_a = ana.create_document("a", text="alpha")
    doc_b = ben.create_document("b", text="beta")
    ana.insert(doc_a.doc, 5, "!")
    ben.insert(doc_b.doc, 4, "?")
    assert doc_a.text() == "alpha!"
    assert doc_b.text() == "beta?"
    # Cross-document notifications don't leak.
    assert all(n.doc == doc_a.doc for n in ana.notifications())
    assert all(n.doc == doc_b.doc for n in ben.notifications())


def test_threaded_multi_document_editing(world):
    """Real threads editing separate documents concurrently."""
    import threading
    clock, server = world
    ana = server.connect("ana")
    docs = [ana.create_document(f"doc-{i}", text="seed ")
            for i in range(4)]
    errors = []

    def editor_thread(index):
        try:
            session = server.connect("ben")
            handle = session.open(docs[index].doc)
            for i in range(50):
                session.insert(docs[index].doc, handle.length(), "x")
        except Exception as exc:  # pragma: no cover - failure reporting
            errors.append(exc)

    threads = [threading.Thread(target=editor_thread, args=(i,))
               for i in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert errors == []
    for doc in docs:
        assert doc.length() == 55
        assert doc.check_integrity() == []
