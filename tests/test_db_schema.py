"""Unit tests for table schemas and typed values."""

import pytest

from repro.db.schema import Column, ColumnType, TableSchema, column
from repro.errors import (
    NotNullViolation,
    SchemaError,
    TypeMismatchError,
    UnknownColumnError,
)
from repro.ids import Oid


class TestColumnType:
    def test_int_accepts_int(self):
        assert ColumnType.INT.validate(7) == 7

    def test_int_rejects_bool(self):
        with pytest.raises(TypeMismatchError):
            ColumnType.INT.validate(True)

    def test_int_rejects_str(self):
        with pytest.raises(TypeMismatchError):
            ColumnType.INT.validate("7")

    def test_float_coerces_int(self):
        value = ColumnType.FLOAT.validate(3)
        assert value == 3.0
        assert isinstance(value, float)

    def test_str_rejects_bytes(self):
        with pytest.raises(TypeMismatchError):
            ColumnType.STR.validate(b"x")

    def test_bool_rejects_int(self):
        with pytest.raises(TypeMismatchError):
            ColumnType.BOOL.validate(1)

    def test_bytes_accepts_bytearray(self):
        assert ColumnType.BYTES.validate(bytearray(b"ab")) == b"ab"

    def test_timestamp_accepts_numbers(self):
        assert ColumnType.TIMESTAMP.validate(1) == 1.0
        assert ColumnType.TIMESTAMP.validate(1.5) == 1.5

    def test_oid_roundtrip_from_string(self):
        oid = ColumnType.OID.validate("doc:42")
        assert oid == Oid("doc", 42)

    def test_oid_passthrough(self):
        oid = Oid("x", 1)
        assert ColumnType.OID.validate(oid) is oid

    def test_json_accepts_nested(self):
        value = {"a": [1, 2, {"b": None}], "c": "x"}
        assert ColumnType.JSON.validate(value) == value

    def test_json_rejects_non_string_keys(self):
        with pytest.raises(TypeMismatchError):
            ColumnType.JSON.validate({1: "x"})

    def test_json_rejects_objects(self):
        with pytest.raises(TypeMismatchError):
            ColumnType.JSON.validate(object())


class TestColumn:
    def test_invalid_name_rejected(self):
        with pytest.raises(SchemaError):
            Column("not a name", ColumnType.INT)

    def test_default_is_validated(self):
        with pytest.raises(TypeMismatchError):
            Column("n", ColumnType.INT, default="zero")

    def test_default_applied_for_missing_value(self):
        col = Column("n", ColumnType.INT, default=5)
        assert col.validate(None) == 5

    def test_not_null_violation(self):
        col = Column("n", ColumnType.INT)
        with pytest.raises(NotNullViolation):
            col.validate(None)

    def test_nullable_accepts_none(self):
        col = Column("n", ColumnType.INT, nullable=True)
        assert col.validate(None) is None

    def test_factory_accepts_type_string(self):
        col = column("n", "int", nullable=True)
        assert col.type is ColumnType.INT
        assert col.nullable


class TestTableSchema:
    def _schema(self) -> TableSchema:
        return TableSchema(
            "t",
            [column("id", "int"), column("name", "str"),
             column("age", "int", nullable=True)],
            key="id",
        )

    def test_duplicate_columns_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema("t", [column("a", "int"), column("a", "str")])

    def test_empty_columns_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema("t", [])

    def test_unknown_key_rejected(self):
        with pytest.raises(UnknownColumnError):
            TableSchema("t", [column("a", "int")], key="b")

    def test_nullable_key_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema("t", [column("a", "int", nullable=True)], key="a")

    def test_make_row_orders_and_validates(self):
        schema = self._schema()
        row = schema.make_row({"name": "ana", "id": 1})
        assert row == (1, "ana", None)

    def test_make_row_rejects_unknown_column(self):
        schema = self._schema()
        with pytest.raises(UnknownColumnError):
            schema.make_row({"id": 1, "name": "a", "oops": 2})

    def test_merge_row_applies_updates(self):
        schema = self._schema()
        row = schema.make_row({"id": 1, "name": "ana", "age": 3})
        merged = schema.merge_row(row, {"age": 4})
        assert merged == (1, "ana", 4)

    def test_merge_row_rejects_null_for_required(self):
        schema = self._schema()
        row = schema.make_row({"id": 1, "name": "ana"})
        with pytest.raises(NotNullViolation):
            schema.merge_row(row, {"name": None})

    def test_merge_row_allows_null_for_nullable(self):
        schema = self._schema()
        row = schema.make_row({"id": 1, "name": "ana", "age": 3})
        assert schema.merge_row(row, {"age": None}) == (1, "ana", None)

    def test_row_dict_roundtrip(self):
        schema = self._schema()
        values = {"id": 1, "name": "ana", "age": None}
        assert schema.row_dict(schema.make_row(values)) == values

    def test_key_of(self):
        schema = self._schema()
        row = schema.make_row({"id": 9, "name": "x"})
        assert schema.key_of(row) == 9

    def test_key_of_without_key_raises(self):
        schema = TableSchema("t", [column("a", "int")])
        with pytest.raises(SchemaError):
            schema.key_of((1,))

    def test_project(self):
        schema = self._schema()
        row = schema.make_row({"id": 1, "name": "ana", "age": 2})
        assert schema.project(row, ["name", "id"]) == ("ana", 1)

    def test_column_index_unknown(self):
        schema = self._schema()
        with pytest.raises(UnknownColumnError):
            schema.column_index("zzz")
