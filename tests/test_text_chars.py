"""Tests for the character-chain primitives."""

import pytest

from repro.db import Database
from repro.errors import (
    InvalidPositionError,
    UnknownCharacterError,
)
from repro.text import DocumentStore, install_text_schema
from repro.text import chars as C
from repro.text import dbschema as S


@pytest.fixture
def db():
    db = Database("t")
    install_text_schema(db)
    return db


@pytest.fixture
def store(db):
    return DocumentStore(db)


class TestAnchors:
    def test_new_document_has_linked_sentinels(self, db, store):
        h = store.create("d", "ana")
        problems = C.check_chain_integrity(db, h.doc, h.begin_char,
                                           h.end_char)
        assert problems == []
        assert C.chain_text(db, h.doc, h.begin_char) == ""


class TestInsert:
    def test_insert_builds_chain(self, db, store):
        h = store.create("d", "ana")
        with db.transaction() as txn:
            C.insert_chars(txn, db, h.doc, h.begin_char, "abc", "ana",
                           db.now())
        assert C.chain_text(db, h.doc, h.begin_char) == "abc"
        assert h.check_integrity() == []

    def test_insert_between_characters(self, db, store):
        h = store.create("d", "ana", text="ac")
        middle = h.char_oid_at(0)
        with db.transaction() as txn:
            C.insert_chars(txn, db, h.doc, middle, "b", "ben", db.now())
        assert C.chain_text(db, h.doc, h.begin_char) == "abc"

    def test_insert_empty_is_noop(self, db, store):
        h = store.create("d", "ana")
        with db.transaction() as txn:
            assert C.insert_chars(txn, db, h.doc, h.begin_char, "", "a",
                                  db.now()) == []

    def test_insert_after_foreign_char_rejected(self, db, store):
        h1 = store.create("d1", "ana", text="x")
        h2 = store.create("d2", "ana", text="y")
        foreign = h2.char_oid_at(0)
        with pytest.raises(InvalidPositionError):
            with db.transaction() as txn:
                C.insert_chars(txn, db, h1.doc, foreign, "z", "ana",
                               db.now())

    def test_insert_after_end_sentinel_rejected(self, db, store):
        h = store.create("d", "ana")
        with pytest.raises(InvalidPositionError):
            with db.transaction() as txn:
                C.insert_chars(txn, db, h.doc, h.end_char, "z", "ana",
                               db.now())

    def test_copy_srcs_must_parallel_text(self, db, store):
        h = store.create("d", "ana")
        with pytest.raises(ValueError):
            with db.transaction() as txn:
                C.insert_chars(txn, db, h.doc, h.begin_char, "ab", "ana",
                               db.now(), copy_srcs=[None])

    def test_author_and_metadata_recorded(self, db, store):
        h = store.create("d", "ana")
        with db.transaction() as txn:
            (oid,) = C.insert_chars(txn, db, h.doc, h.begin_char, "x",
                                    "ben", 123.0)
        __, row = C.char_row(db, oid)
        assert row["author"] == "ben"
        assert row["created_at"] == 123.0
        assert row["version"] == 0
        assert not row["deleted"]


class TestDelete:
    def test_logical_delete_hides_but_keeps(self, db, store):
        h = store.create("d", "ana", text="abc")
        target = h.char_oid_at(1)
        with db.transaction() as txn:
            C.logical_delete(txn, db, [target], "ben", 99.0)
        assert C.chain_text(db, h.doc, h.begin_char) == "ac"
        __, row = C.char_row(db, target)
        assert row["deleted"] and row["deleted_by"] == "ben"
        assert row["deleted_at"] == 99.0
        # Still part of the chain.
        full = [r["ch"] for r in C.traverse(db, h.doc, h.begin_char,
                                            include_deleted=True)]
        assert full == ["a", "b", "c"]

    def test_delete_sentinel_rejected(self, db, store):
        h = store.create("d", "ana")
        with pytest.raises(InvalidPositionError):
            with db.transaction() as txn:
                C.logical_delete(txn, db, [h.begin_char], "a", 0.0)

    def test_undelete_restores(self, db, store):
        h = store.create("d", "ana", text="abc")
        target = h.char_oid_at(1)
        with db.transaction() as txn:
            C.logical_delete(txn, db, [target], "ben", 1.0)
        with db.transaction() as txn:
            C.undelete(txn, db, [target], "ben")
        assert C.chain_text(db, h.doc, h.begin_char) == "abc"
        __, row = C.char_row(db, target)
        assert row["version"] == 2  # bumped by delete and undelete


class TestTraversal:
    def test_unknown_begin_raises(self, db, store):
        h = store.create("d", "ana")
        with pytest.raises(UnknownCharacterError):
            list(C.traverse(db, h.doc, db.new_oid("char")))

    def test_integrity_detects_broken_pointer(self, db, store):
        h = store.create("d", "ana", text="abc")
        # Corrupt: point the first char at a nonexistent successor.
        rowid, __ = C.char_row(db, h.char_oid_at(0))
        db.update(S.CHARS, rowid, {"next": db.new_oid("char")})
        problems = C.check_chain_integrity(db, h.doc, h.begin_char,
                                           h.end_char)
        assert problems  # broken chain reported

    def test_integrity_detects_bad_backpointer(self, db, store):
        h = store.create("d", "ana", text="ab")
        rowid, __ = C.char_row(db, h.char_oid_at(1))
        db.update(S.CHARS, rowid, {"prev": h.begin_char})
        problems = C.check_chain_integrity(db, h.doc, h.begin_char,
                                           h.end_char)
        assert any("prev" in p for p in problems)

    def test_char_row_unknown(self, db, store):
        with pytest.raises(UnknownCharacterError):
            C.char_row(db, db.new_oid("char"))


class TestStyleAssignment:
    def test_set_style_bumps_version(self, db, store):
        h = store.create("d", "ana", text="ab")
        style = db.new_oid("style")
        with db.transaction() as txn:
            C.set_style(txn, db, [h.char_oid_at(0)], style)
        __, row = C.char_row(db, h.char_oid_at(0))
        assert row["style"] == style
        assert row["version"] == 1
