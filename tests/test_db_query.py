"""Tests for the query builder/executor and its index selection."""

import pytest

from repro.db import Database, col, column
from repro.db.predicate import Lambda
from repro.errors import UnknownColumnError, UnknownTableError


class TestBasicQueries:
    def test_full_scan_returns_all(self, people_db):
        assert people_db.query("people").count() == 5

    def test_where_eq(self, people_db):
        rows = people_db.query("people").where(col("city") == "zurich").run()
        assert {r["name"] for r in rows} == {"ana", "cleo"}

    def test_where_combined(self, people_db):
        pred = (col("city") == "zurich") & (col("age") > 35)
        rows = people_db.query("people").where(pred).run()
        assert [r["name"] for r in rows] == ["cleo"]

    def test_chained_where_is_and(self, people_db):
        rows = (people_db.query("people")
                .where(col("city") == "zurich")
                .where(col("age") > 35)
                .run())
        assert [r["name"] for r in rows] == ["cleo"]

    def test_order_by_asc_desc(self, people_db):
        asc = people_db.query("people").order_by("age").run()
        assert [r["age"] for r in asc] == [27, 27, 34, 41, 55]
        desc = people_db.query("people").order_by("age", desc=True).run()
        assert [r["age"] for r in desc] == [55, 41, 34, 27, 27]

    def test_order_by_with_nulls(self, people_db):
        rows = people_db.query("people").order_by("city").run()
        assert rows[0]["city"] is None  # nulls sort first

    def test_limit(self, people_db):
        rows = people_db.query("people").order_by("age").limit(2).run()
        assert len(rows) == 2

    def test_limit_zero(self, people_db):
        assert people_db.query("people").limit(0).run() == []

    def test_negative_limit_rejected(self, people_db):
        with pytest.raises(ValueError):
            people_db.query("people").limit(-1)

    def test_select_projection(self, people_db):
        rows = (people_db.query("people")
                .where(col("name") == "ana")
                .select("name", "age").run())
        assert rows == [{"name": "ana", "age": 34}]

    def test_select_unknown_column_raises(self, people_db):
        with pytest.raises(UnknownColumnError):
            people_db.query("people").select("nope").run()

    def test_first(self, people_db):
        row = people_db.query("people").where(col("name") == "ben").first()
        assert row["age"] == 27
        assert people_db.query("people").where(col("name") == "zz").first() is None

    def test_first_does_not_mutate_builder(self, people_db):
        # Regression: first() used to call self.limit(1), leaving
        # _limit = 1 on the builder so a later run() silently returned
        # one row instead of every match.
        q = people_db.query("people")
        assert q.first() is not None
        assert len(q.run()) == 5
        assert q._limit is None

    def test_first_keeps_explicit_limit(self, people_db):
        q = people_db.query("people").limit(0)
        assert q.first() is None          # limit 0 means no rows
        assert q._limit == 0

    def test_first_restores_limit_on_error(self, people_db):
        q = people_db.query("people").order_by("age")
        q._order = ("no_such_column", False)  # force run() to raise
        with pytest.raises(UnknownColumnError):
            q.first()
        assert q._limit is None

    def test_iteration(self, people_db):
        names = {r["name"] for r in people_db.query("people")}
        assert len(names) == 5

    def test_unknown_table(self, people_db):
        with pytest.raises(UnknownTableError):
            people_db.query("nope").run()

    def test_rowids_exposed(self, people_db):
        rows = people_db.query("people").run()
        assert len({r.rowid for r in rows}) == 5

    def test_lambda_predicate(self, people_db):
        rows = people_db.query("people").where(
            Lambda(lambda r: r["age"] % 2 == 1, label="odd age")).run()
        assert {r["name"] for r in rows} == {"ben", "cleo", "dan", "eva"}


class TestPlanning:
    def test_key_equality_uses_index(self, people_db):
        plan = people_db.query("people").where(col("name") == "ana").plan()
        assert plan.kind == "index"
        assert plan.hint.column == "name"

    def test_range_uses_ordered_index(self, people_db):
        plan = people_db.query("people").where(col("age") >= 30).plan()
        assert plan.kind == "index"
        assert plan.hint.op == "range"

    def test_unindexed_column_scans(self, people_db):
        plan = people_db.query("people").where(col("city") == "zurich").plan()
        assert plan.kind == "scan"

    def test_or_predicate_scans(self, people_db):
        pred = (col("name") == "ana") | (col("name") == "ben")
        assert people_db.query("people").where(pred).plan().kind == "scan"

    def test_isin_uses_index(self, people_db):
        plan = people_db.query("people").where(
            col("name").isin(["ana", "ben"])).plan()
        assert plan.kind == "index"
        rows = people_db.query("people").where(
            col("name").isin(["ana", "ben"])).run()
        assert {r["name"] for r in rows} == {"ana", "ben"}

    def test_eq_preferred_over_range(self, people_db):
        pred = (col("age") >= 20) & (col("name") == "ana")
        plan = people_db.query("people").where(pred).plan()
        assert plan.hint.op == "eq"

    def test_index_and_scan_agree(self, people_db):
        pred = col("age").between(27, 41)
        via_index = people_db.query("people").where(pred).run()
        # Force a scan by ordering on an unindexed shape.
        scan_rows = [
            r for r in people_db.query("people").run() if 27 <= r["age"] <= 41
        ]
        assert {r["name"] for r in via_index} == {r["name"] for r in scan_rows}


class TestPendingOverlay:
    def test_txn_sees_pending_through_index_plan(self):
        db = Database("t")
        db.create_table("kv", [column("k", "str"), column("v", "int")],
                        key="k")
        db.insert("kv", {"k": "a", "v": 1})
        txn = db.begin()
        txn.insert("kv", {"k": "b", "v": 2})
        rows = txn.query("kv").where(col("k") == "b").run()
        assert len(rows) == 1 and rows[0]["v"] == 2
        txn.abort()

    def test_txn_pending_update_replaces_committed(self):
        db = Database("t")
        db.create_table("kv", [column("k", "str"), column("v", "int")],
                        key="k")
        rid = db.insert("kv", {"k": "a", "v": 1})
        txn = db.begin()
        txn.update("kv", rid, {"v": 99})
        rows = txn.query("kv").run()
        assert rows[0]["v"] == 99
        # committed view unchanged
        assert db.query("kv").run()[0]["v"] == 1
        txn.abort()

    def test_txn_pending_delete_hides_row(self):
        db = Database("t")
        db.create_table("kv", [column("k", "str"), column("v", "int")],
                        key="k")
        rid = db.insert("kv", {"k": "a", "v": 1})
        txn = db.begin()
        txn.delete("kv", rid)
        assert txn.query("kv").count() == 0
        assert db.query("kv").count() == 1
        txn.commit()
        assert db.query("kv").count() == 0

    def test_pending_update_found_by_new_value_probe(self):
        """An index probe for the *new* value must surface the pending row."""
        db = Database("t")
        db.create_table("kv", [column("k", "str"), column("v", "int")],
                        key="k")
        rid = db.insert("kv", {"k": "a", "v": 1})
        txn = db.begin()
        txn.update("kv", rid, {"k": "z"})
        rows = txn.query("kv").where(col("k") == "z").run()
        assert len(rows) == 1
        # And the old value must no longer match for the owner.
        assert txn.query("kv").where(col("k") == "a").count() == 0
        txn.abort()


class TestAggregates:
    def test_sum_min_max(self, people_db):
        query = people_db.query("people")
        assert query.sum("age") == 34 + 27 + 41 + 27 + 55
        assert people_db.query("people").min("age") == 27
        assert people_db.query("people").max("age") == 55

    def test_avg(self, people_db):
        assert people_db.query("people").avg("age") == pytest.approx(36.8)

    def test_aggregates_respect_predicate(self, people_db):
        query = people_db.query("people").where(col("city") == "zurich")
        assert query.sum("age") == 34 + 41

    def test_empty_aggregates(self, people_db):
        query = people_db.query("people").where(col("name") == "nobody")
        assert query.sum("age") == 0
        assert query.min("age") is None
        assert query.max("age") is None
        assert query.avg("age") is None

    def test_nulls_skipped(self, people_db):
        # `city` is NULL for dan.
        assert len(people_db.query("people").distinct("city")) == 3

    def test_distinct(self, people_db):
        assert people_db.query("people").distinct("age") == {27, 34, 41, 55}

    def test_group_count(self, people_db):
        counts = people_db.query("people").group_count("city")
        assert counts == {"zurich": 2, "bolzano": 1, "geneva": 1, None: 1}

    def test_aggregate_unknown_column(self, people_db):
        with pytest.raises(UnknownColumnError):
            people_db.query("people").sum("nope")

    def test_aggregate_sees_txn_pending(self):
        db = Database("t")
        db.create_table("kv", [column("k", "str"), column("v", "int")],
                        key="k")
        db.insert("kv", {"k": "a", "v": 1})
        txn = db.begin()
        txn.insert("kv", {"k": "b", "v": 10})
        assert txn.query("kv").sum("v") == 11
        assert db.query("kv").sum("v") == 1
        txn.abort()


class TestExplain:
    def test_explain_scan(self, people_db):
        plan = people_db.query("people").where(
            col("city") == "zurich").explain()
        assert plan["access"]["path"] == "scan"
        assert plan["access"]["estimated_candidates"] == 5
        assert "city" in plan["filter"]

    def test_explain_index_probe(self, people_db):
        plan = people_db.query("people").where(
            col("name") == "ana").explain()
        assert plan["access"]["path"] == "index"
        assert plan["access"]["column"] == "name"
        assert plan["access"]["probe"] == "eq"
        assert plan["access"]["estimated_candidates"] == 1

    def test_explain_range_probe(self, people_db):
        plan = people_db.query("people").where(col("age") >= 40).explain()
        assert plan["access"]["probe"] == "range"
        assert plan["access"]["estimated_candidates"] == 2

    def test_explain_early_stop_flag(self, people_db):
        plan = people_db.query("people").limit(1).explain()
        assert plan["early_stop"] is True
        plan = people_db.query("people").order_by("age").limit(1).explain()
        assert plan["early_stop"] is False
