"""Unit tests for the fault-injection subsystem: crash points, torn-tail
hardening, lock faults, delivery faults, and the deterministic scheduler.

Each crash-point test pins the *semantics* of one named point — what a
crash there must and must not lose — so the bulk torture suite
(``test_crash_torture.py``) can treat recovery equivalence as a single
property over random schedules.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.db import Database, column, recover_file
from repro.db.wal import WriteAheadLog, committed_txn_ids
from repro.errors import DeadlockError, LockTimeoutError, WalError
from repro.faults import (
    CRASH_POINTS,
    CrashSignal,
    DeliveryFault,
    DeterministicScheduler,
    FaultInjector,
    FaultPlan,
    LockFault,
)


def make_db(tmp_path, plan: FaultPlan | None = None, *, armed: bool = True):
    """A file-backed database with the ``kv`` torture table and a plan."""
    path = str(tmp_path / "wal.jsonl")
    faults = FaultInjector(plan, armed=armed) if plan is not None else None
    db = Database("ft", wal_path=path, faults=faults)
    db.create_table("kv", [column("k", "str"), column("v", "int")], key="k")
    return db, path


def kv_rows(db: Database) -> dict[str, int]:
    if not db.has_table("kv"):
        return {}
    table = db.table("kv")
    return {row[0]: row[1] for __, row in table.committed_items()}


# ---------------------------------------------------------------------------
# Crash-point semantics
# ---------------------------------------------------------------------------

class TestCrashPoints:
    def test_pre_commit_crash_loses_the_transaction(self, tmp_path):
        # Hit 2: the CREATE_TABLE is unlogged by txns; commits count 1, 2...
        db, path = make_db(tmp_path, FaultPlan.crash_once("txn.pre_commit",
                                                          hit=2))
        db.insert("kv", {"k": "a", "v": 1})
        with pytest.raises(CrashSignal):
            db.insert("kv", {"k": "b", "v": 2})
        recovered = recover_file(path)
        assert kv_rows(recovered) == {"a": 1}

    def test_post_commit_crash_keeps_the_transaction(self, tmp_path):
        # The commit point is the WAL append: a crash *after* the COMMIT
        # record is durable must surface the transaction on recovery even
        # though the crashed process never applied its staged images.
        db, path = make_db(tmp_path, FaultPlan.crash_once("txn.post_commit",
                                                          hit=2))
        db.insert("kv", {"k": "a", "v": 1})
        with pytest.raises(CrashSignal):
            db.insert("kv", {"k": "b", "v": 2})
        recovered = recover_file(path)
        assert kv_rows(recovered) == {"a": 1, "b": 2}

    @pytest.mark.filterwarnings("ignore:skipping torn trailing WAL record")
    def test_torn_commit_record_loses_the_transaction(self, tmp_path):
        # File appends: CREATE_TABLE(1) BEGIN(2) INSERT(3) COMMIT(4)
        #               BEGIN(5) INSERT(6) COMMIT(7) <- torn
        db, path = make_db(tmp_path, FaultPlan.crash_once("wal.mid_record",
                                                          hit=7, tear=0.5))
        db.insert("kv", {"k": "a", "v": 1})
        with pytest.raises(CrashSignal):
            db.insert("kv", {"k": "b", "v": 2})
        # The torn prefix reached "disk" but is not a parseable record.
        last_line = open(path, encoding="utf-8").read().splitlines()[-1]
        with pytest.raises(json.JSONDecodeError):
            json.loads(last_line)
        recovered = recover_file(path)
        assert kv_rows(recovered) == {"a": 1}

    def test_lost_fsync_under_power_loss_drops_the_commit(self, tmp_path):
        # before_fsync counts commit-boundary syncs: hit 2 is txn b's
        # COMMIT.  Power loss truncates to the last fsync, so the whole
        # second transaction vanishes — cleanly, no torn tail.
        db, path = make_db(tmp_path, FaultPlan.crash_once(
            "wal.before_fsync", hit=2, power_loss=True))
        db.insert("kv", {"k": "a", "v": 1})
        with pytest.raises(CrashSignal):
            db.insert("kv", {"k": "b", "v": 2})
        recovered = recover_file(path)
        assert kv_rows(recovered) == {"a": 1}

    def test_lost_fsync_without_power_loss_keeps_the_commit(self, tmp_path):
        # Same crash, but a plain process death: the OS page cache holds
        # the flushed-not-fsynced COMMIT line, so the transaction lives.
        db, path = make_db(tmp_path, FaultPlan.crash_once(
            "wal.before_fsync", hit=2, power_loss=False))
        db.insert("kv", {"k": "a", "v": 1})
        with pytest.raises(CrashSignal):
            db.insert("kv", {"k": "b", "v": 2})
        recovered = recover_file(path)
        assert kv_rows(recovered) == {"a": 1, "b": 2}

    def test_before_append_on_ddl_loses_the_table(self, tmp_path):
        path = str(tmp_path / "wal.jsonl")
        faults = FaultInjector(FaultPlan.crash_once("wal.before_append",
                                                    hit=1))
        db = Database("ft", wal_path=path, faults=faults)
        with pytest.raises(CrashSignal):
            db.create_table("kv", [column("k", "str")], key="k")
        recovered = recover_file(path)
        assert not recovered.has_table("kv")

    def test_mid_snapshot_crash_falls_back_to_full_replay(self, tmp_path):
        db, path = make_db(tmp_path,
                           FaultPlan.crash_once("checkpoint.mid_snapshot"))
        for i in range(5):
            db.insert("kv", {"k": f"k{i}", "v": i})
        with pytest.raises(CrashSignal):
            db.checkpoint()
        # The half-built snapshot never reached the log...
        records = WriteAheadLog.load_file(path)
        assert all(r.type != "CHECKPOINT" for r in records)
        # ...and recovery replays the full history instead.
        assert kv_rows(recover_file(path)) == {f"k{i}": i for i in range(5)}

    def test_dead_process_cannot_write_another_byte(self, tmp_path):
        db, path = make_db(tmp_path, FaultPlan.crash_once("txn.pre_commit"))
        with pytest.raises(CrashSignal):
            db.insert("kv", {"k": "a", "v": 1})
        size = len(open(path, "rb").read())
        # Post-mortem activity (the context manager's abort already ran;
        # pile on a whole extra transaction) must stay off the "disk".
        db.insert("kv", {"k": "ghost", "v": 13})
        assert len(open(path, "rb").read()) == size
        assert kv_rows(recover_file(path)) == {}

    def test_injector_records_what_fired(self, tmp_path):
        db, __ = make_db(tmp_path, FaultPlan.crash_once("txn.pre_commit"))
        with pytest.raises(CrashSignal):
            db.insert("kv", {"k": "a", "v": 1})
        assert db.faults.crashed
        assert db.faults.crash_point_fired == "txn.pre_commit"
        assert [f.kind for f in db.faults.fired] == ["crash"]

    def test_disarmed_injector_counts_nothing_until_armed(self, tmp_path):
        plan = FaultPlan.crash_once("txn.pre_commit", hit=1)
        path = str(tmp_path / "wal.jsonl")
        faults = FaultInjector(plan, armed=False)
        db = Database("ft", wal_path=path, faults=faults)
        db.create_table("kv", [column("k", "str"), column("v", "int")],
                        key="k")
        db.insert("kv", {"k": "fixture", "v": 0})   # outside the blast radius
        faults.arm()
        with pytest.raises(CrashSignal):
            db.insert("kv", {"k": "a", "v": 1})
        assert kv_rows(recover_file(path)) == {"fixture": 0}


# ---------------------------------------------------------------------------
# Torn-tail hardening of WriteAheadLog.load_file (satellite)
# ---------------------------------------------------------------------------

def _valid_line(lsn: int, type_: str = "BEGIN", txn: int = 1) -> str:
    return json.dumps({"lsn": lsn, "type": type_, "txn": txn, "payload": {}})


class TestTornTailHardening:
    def test_torn_trailing_record_is_skipped_with_warning(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        path.write_text(_valid_line(1) + "\n" + _valid_line(2)[:17] + "\n")
        with pytest.warns(RuntimeWarning, match="torn trailing WAL record"):
            records = WriteAheadLog.load_file(str(path))
        assert [r.lsn for r in records] == [1]

    def test_trailing_record_missing_fields_is_skipped(self, tmp_path):
        # Valid JSON, but not a valid record (no "type"/"txn") — the tear
        # happened to land on a field boundary.
        path = tmp_path / "wal.jsonl"
        path.write_text(_valid_line(1) + "\n" + json.dumps({"lsn": 2}) + "\n")
        with pytest.warns(RuntimeWarning):
            records = WriteAheadLog.load_file(str(path))
        assert [r.lsn for r in records] == [1]

    def test_mid_file_corruption_still_raises(self, tmp_path):
        # A malformed record with valid records after it is corruption,
        # not a crash signature — silently dropping it would drop
        # committed history.
        path = tmp_path / "wal.jsonl"
        path.write_text("garbage{{{\n" + _valid_line(2) + "\n")
        with pytest.raises(WalError, match="not a torn tail"):
            WriteAheadLog.load_file(str(path))

    @pytest.mark.filterwarnings("ignore:skipping torn trailing WAL record")
    def test_recover_file_survives_a_torn_tail(self, tmp_path):
        db, path = make_db(tmp_path)
        db.insert("kv", {"k": "a", "v": 1})
        db.close()
        with open(path, "a", encoding="utf-8") as f:
            f.write('{"lsn": 99, "type": "COMM')
        assert kv_rows(recover_file(path)) == {"a": 1}


# ---------------------------------------------------------------------------
# Lock faults (injected timeouts / latency)
# ---------------------------------------------------------------------------

class TestLockFaults:
    def test_injected_timeout_aborts_the_victim_only(self, tmp_path):
        plan = FaultPlan(lock_faults=(LockFault(nth=1, kind="timeout"),))
        db, path = make_db(tmp_path, plan, armed=False)
        db.faults.arm()
        with pytest.raises(LockTimeoutError, match="injected timeout"):
            db.insert("kv", {"k": "a", "v": 1})
        assert db.locks.stats["injected"] == 1
        assert db.locks.stats["timeouts"] >= 1
        # The fault was one-shot; the engine is healthy afterwards.
        db.insert("kv", {"k": "b", "v": 2})
        assert kv_rows(db) == {"b": 2}
        db.close()
        assert kv_rows(recover_file(path)) == {"b": 2}

    def test_injected_delay_widens_the_window_but_succeeds(self, tmp_path):
        plan = FaultPlan(lock_faults=(LockFault(nth=1, kind="delay",
                                                delay=0.001),))
        db, __ = make_db(tmp_path, plan, armed=False)
        db.faults.arm()
        db.insert("kv", {"k": "a", "v": 1})
        assert kv_rows(db) == {"a": 1}
        lock_faults = [f for f in db.faults.fired if f.kind == "lock"]
        assert len(lock_faults) == 1
        assert lock_faults[0].detail["kind"] == "delay"


# ---------------------------------------------------------------------------
# Real lock-timeout and deadlock paths (satellite: locks.py coverage)
# ---------------------------------------------------------------------------

class TestLockTimeoutAndDeadlock:
    def test_contended_row_times_out_and_retry_succeeds(self, db):
        db.create_table("kv", [column("k", "str"), column("v", "int")],
                        key="k")
        rowid = db.insert("kv", {"k": "a", "v": 1})
        holder = db.begin()
        holder.update("kv", rowid, {"v": 2})
        waiter = db.begin(lock_timeout=0.05)
        with pytest.raises(LockTimeoutError):
            waiter.update("kv", rowid, {"v": 3})
        waiter.abort()
        assert db.locks.stats["timeouts"] >= 1
        holder.commit()
        # The lock was released on commit; a fresh transaction gets it.
        db.update("kv", rowid, {"v": 4})
        assert db.get("kv", rowid)["v"] == 4

    def test_zero_timeout_fails_immediately_on_conflict(self, db):
        db.create_table("kv", [column("k", "str"), column("v", "int")],
                        key="k")
        rowid = db.insert("kv", {"k": "a", "v": 1})
        holder = db.begin()
        holder.update("kv", rowid, {"v": 2})
        waited_before = db.locks.stats["waited"]
        waiter = db.begin(lock_timeout=0)
        with pytest.raises(LockTimeoutError, match="would block"):
            waiter.update("kv", rowid, {"v": 3})
        assert db.locks.stats["waited"] == waited_before  # never queued
        waiter.abort()
        holder.abort()

    def test_two_session_deadlock_aborts_exactly_one_victim(self, db):
        """A classic A->B / B->A cycle: one txn dies, the other commits."""
        db.create_table("kv", [column("k", "str"), column("v", "int")],
                        key="k")
        r1 = db.insert("kv", {"k": "a", "v": 0})
        r2 = db.insert("kv", {"k": "b", "v": 0})
        barrier = threading.Barrier(2, timeout=5)
        outcomes: dict[str, str] = {}

        def run(name: str, first: int, second: int, value: int) -> None:
            txn = db.begin()
            try:
                txn.update("kv", first, {"v": value})
                barrier.wait()
                txn.update("kv", second, {"v": value})
                txn.commit()
                outcomes[name] = "committed"
            except DeadlockError:
                txn.abort()
                outcomes[name] = "victim"

        t1 = threading.Thread(target=run, args=("t1", r1, r2, 1))
        t2 = threading.Thread(target=run, args=("t2", r2, r1, 2))
        t1.start(); t2.start()
        t1.join(10); t2.join(10)
        assert not t1.is_alive() and not t2.is_alive()
        assert sorted(outcomes.values()) == ["committed", "victim"]
        assert db.locks.stats["deadlocks"] == 1
        # The survivor's value won on both rows; the victim left no trace.
        winner = next(n for n, o in outcomes.items() if o == "committed")
        value = 1 if winner == "t1" else 2
        assert db.get("kv", r1)["v"] == value
        assert db.get("kv", r2)["v"] == value
        # All locks were released either way.
        assert db.locks.holders(("row", "kv", r1)) == {}
        assert db.locks.holders(("row", "kv", r2)) == {}


# ---------------------------------------------------------------------------
# Delivery faults on the collab message bus
# ---------------------------------------------------------------------------

def _pair(server):
    """Two connected users sharing one document; returns (ana, ben, doc)."""
    server.register_user("ana")
    server.register_user("ben")
    ana = server.connect("ana")
    ben = server.connect("ben")
    handle = ana.create_document("shared", text="hello world. ")
    ben.open(handle.doc)
    return ana, ben, handle


class TestDeliveryFaults:
    def test_default_delivery_is_immediate(self):
        from repro.collab import CollaborationServer
        server = CollaborationServer(node="dlv")
        ana, ben, handle = _pair(server)
        ana.insert(handle.doc, 0, "x")
        assert server.delivery.pending == 0
        assert len(ben.notifications()) == 1

    def test_held_notifications_wait_for_drain(self):
        from repro.collab import CollaborationServer
        plan = FaultPlan(delivery=DeliveryFault(p_hold=1.0, reorder=False),
                         seed=1)
        server = CollaborationServer(node="dlv",
                                     faults=FaultInjector(plan))
        ana, ben, handle = _pair(server)
        ana.insert(handle.doc, 0, "x")
        ana.insert(handle.doc, 0, "y")
        assert ben.notifications() == []          # nothing came through
        assert server.delivery.pending == 2
        delivered = server.delivery.drain()
        assert delivered == 2
        assert server.delivery.pending == 0
        seqs = [n.seq for n in ben.notifications()]
        assert len(seqs) == 2
        assert seqs[1] == seqs[0] + 1             # reorder=False: send order
        # Inboxes lag, but replicas never did: the handle cache follows
        # commits, so the text is already converged.
        assert ben.handle(handle.doc).text() == handle.text()

    def test_reordered_drain_is_complete_and_out_of_order(self):
        from repro.collab import CollaborationServer
        plan = FaultPlan(delivery=DeliveryFault(p_hold=1.0, reorder=True),
                         seed=7)
        server = CollaborationServer(node="dlv",
                                     faults=FaultInjector(plan))
        ana, ben, handle = _pair(server)
        for i in range(6):
            ana.insert(handle.doc, 0, "abcdef"[i])
        server.delivery.drain()
        seqs = [n.seq for n in ben.notifications()]
        # No loss, no duplication: six consecutive sequence numbers...
        assert sorted(seqs) == list(range(min(seqs), min(seqs) + 6))
        assert seqs != sorted(seqs)                # ...observed out of order
        assert server.delivery.stats["held"] == 6

    def test_drain_skips_disconnected_sessions(self):
        from repro.collab import CollaborationServer
        plan = FaultPlan(delivery=DeliveryFault(p_hold=1.0, reorder=False),
                         seed=3)
        server = CollaborationServer(node="dlv",
                                     faults=FaultInjector(plan))
        ana, ben, handle = _pair(server)
        ana.insert(handle.doc, 0, "x")
        assert server.delivery.pending == 1
        ben.disconnect()
        server.delivery.drain()                    # send to a closed socket
        assert server.delivery.pending == 0
        assert ben.inbox == []


# ---------------------------------------------------------------------------
# Deterministic scheduler
# ---------------------------------------------------------------------------

def _counting_scheduler(seed: int, n_actors: int = 3):
    sched = DeterministicScheduler(seed)
    counts = {f"a{i}": 0 for i in range(n_actors)}

    def make_step(name):
        def step():
            counts[name] += 1
        return step

    for name in counts:
        sched.add_actor(name, make_step(name))
    return sched, counts


class TestDeterministicScheduler:
    def test_same_seed_same_trace(self):
        s1, __ = _counting_scheduler(42)
        s2, __ = _counting_scheduler(42)
        assert s1.run(50) == s2.run(50)

    def test_different_seeds_differ(self):
        s1, __ = _counting_scheduler(0)
        s2, __ = _counting_scheduler(1)
        assert s1.run(50) != s2.run(50)

    def test_trace_counts_match_executed_steps(self):
        sched, counts = _counting_scheduler(5)
        trace = sched.run(30)
        assert len(trace) == 30
        for name, n in counts.items():
            assert trace.count(name) == n

    def test_weights_bias_the_interleaving(self):
        sched = DeterministicScheduler(9)
        counts = {"heavy": 0, "light": 0}
        sched.add_actor("heavy", lambda: counts.__setitem__(
            "heavy", counts["heavy"] + 1), weight=9)
        sched.add_actor("light", lambda: counts.__setitem__(
            "light", counts["light"] + 1), weight=1)
        sched.run(100)
        assert counts["heavy"] > counts["light"]

    def test_crash_propagates_with_trace_intact(self):
        sched = DeterministicScheduler(3)
        ticks = []

        def boom():
            if len(ticks) >= 4:
                raise CrashSignal("died")
            ticks.append(1)

        sched.add_actor("boom", boom)
        with pytest.raises(CrashSignal):
            sched.run(100)
        assert len(sched.trace) == 5               # the fatal step included


# ---------------------------------------------------------------------------
# Fault plans
# ---------------------------------------------------------------------------

class TestFaultPlan:
    def test_random_plans_are_seed_reproducible(self):
        assert FaultPlan.random(1234) == FaultPlan.random(1234)
        assert FaultPlan.delivery_only(9) == FaultPlan.delivery_only(9)

    def test_random_plans_cover_every_crash_point(self):
        points = {FaultPlan.random(s).crashes[0].point for s in range(200)}
        assert points == set(CRASH_POINTS)

    def test_crash_once_rejects_unknown_points(self):
        with pytest.raises(ValueError, match="unknown crash point"):
            FaultPlan.crash_once("wal.no_such_point")

    def test_empty_plan_is_inert(self, tmp_path):
        db, path = make_db(tmp_path, FaultPlan())
        db.insert("kv", {"k": "a", "v": 1})
        db.close()
        assert db.faults.fired == []
        assert kv_rows(recover_file(path)) == {"a": 1}
