"""Property-based tests (hypothesis) for the database substrate.

Two model-based suites:

* the table/transaction machinery against a plain dict model under random
  interleavings of insert/update/delete/commit/abort, and
* the ordered index against a sorted list.
"""

from __future__ import annotations

import bisect

from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    Bundle,
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)

from repro.db import Database, col, column
from repro.db.index import OrderedIndex


# ---------------------------------------------------------------------------
# Ordered index vs sorted list
# ---------------------------------------------------------------------------

keys = st.integers(min_value=-50, max_value=50)


@settings(max_examples=200)
@given(st.lists(st.tuples(keys, st.integers(0, 1000)), max_size=60))
def test_ordered_index_matches_sorted_list(entries):
    index = OrderedIndex("i", "c")
    model: list[tuple[int, int]] = []
    for key, rowid in entries:
        index.add(key, rowid)
        bisect.insort(model, (key, rowid))
    assert list(index.iter_ordered()) == model
    for probe in range(-50, 51, 10):
        expected = sorted(r for k, r in model if k == probe)
        assert sorted(index.probe_eq(probe)) == expected


@settings(max_examples=200)
@given(
    st.lists(st.tuples(keys, st.integers(0, 100)), min_size=1, max_size=40),
    keys, keys,
)
def test_ordered_index_range_probe(entries, low, high):
    if low > high:
        low, high = high, low
    index = OrderedIndex("i", "c")
    for key, rowid in entries:
        index.add(key, rowid)
    got = sorted(index.probe_range(low, high))
    expected = sorted(r for k, r in entries if low <= k <= high)
    assert got == expected


@settings(max_examples=100)
@given(st.lists(st.tuples(keys, st.integers(0, 30)), max_size=40))
def test_ordered_index_add_remove_roundtrip(entries):
    index = OrderedIndex("i", "c")
    for key, rowid in entries:
        index.add(key, rowid)
    for key, rowid in entries:
        index.remove(key, rowid)
    assert len(index) == 0
    assert list(index.iter_ordered()) == []


# ---------------------------------------------------------------------------
# Transactional table vs dict model
# ---------------------------------------------------------------------------


class DatabaseModel(RuleBasedStateMachine):
    """Random single-transaction-at-a-time ops vs a dict model.

    One transaction may be open at a time (mirroring one editing session);
    committed state must always equal the model, and an open transaction
    must see model + its staged changes.
    """

    rowids = Bundle("rowids")

    @initialize()
    def setup(self):
        self.db = Database("prop")
        self.db.create_table(
            "t", [column("v", "int"), column("tag", "str", nullable=True)]
        )
        self.committed: dict[int, dict] = {}
        self.staged: dict[int, dict | None] = {}  # None = delete
        self.txn = None

    # -- transaction control -------------------------------------------------

    @rule()
    def begin(self):
        if self.txn is None:
            self.txn = self.db.begin()
            self.staged = {}

    @rule()
    def commit(self):
        if self.txn is not None:
            self.txn.commit()
            for rowid, row in self.staged.items():
                if row is None:
                    self.committed.pop(rowid, None)
                else:
                    self.committed[rowid] = row
            self.staged = {}
            self.txn = None

    @rule()
    def abort(self):
        if self.txn is not None:
            self.txn.abort()
            self.staged = {}
            self.txn = None

    # -- DML -------------------------------------------------------------------

    @rule(target=rowids, v=st.integers(-5, 5),
          tag=st.sampled_from(["a", "b", None]))
    def insert(self, v, tag):
        values = {"v": v, "tag": tag}
        if self.txn is None:
            rowid = self.db.insert("t", values)
            self.committed[rowid] = values
        else:
            rowid = self.txn.insert("t", values)
            self.staged[rowid] = values
        return rowid

    @rule(rowid=rowids, v=st.integers(-5, 5))
    def update(self, rowid, v):
        live = self._visible()
        if rowid not in live:
            return
        new_row = dict(live[rowid], v=v)
        if self.txn is None:
            self.db.update("t", rowid, {"v": v})
            self.committed[rowid] = new_row
        else:
            self.txn.update("t", rowid, {"v": v})
            self.staged[rowid] = new_row

    @rule(rowid=rowids)
    def delete(self, rowid):
        live = self._visible()
        if rowid not in live:
            return
        if self.txn is None:
            self.db.delete("t", rowid)
            del self.committed[rowid]
        else:
            self.txn.delete("t", rowid)
            self.staged[rowid] = None

    def _visible(self) -> dict[int, dict]:
        view = dict(self.committed)
        for rowid, row in self.staged.items():
            if row is None:
                view.pop(rowid, None)
            else:
                view[rowid] = row
        return view

    # -- invariants ---------------------------------------------------------------

    @invariant()
    def committed_state_matches_model(self):
        rows = {r.rowid: dict(r) for r in self.db.query("t").run()}
        assert rows == self.committed

    @invariant()
    def txn_view_matches_model(self):
        if self.txn is not None:
            rows = {r.rowid: dict(r) for r in self.txn.query("t").run()}
            assert rows == self._visible()

    @invariant()
    def filtered_count_matches(self):
        expected = sum(1 for r in self.committed.values() if r["v"] > 0)
        assert self.db.query("t").where(col("v") > 0).count() == expected


TestDatabaseModel = DatabaseModel.TestCase
TestDatabaseModel.settings = settings(
    max_examples=30, stateful_step_count=30, deadline=None
)
