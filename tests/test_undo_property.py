"""Property-based tests for undo/redo.

The defining invariants of operation-log undo:

* undoing every operation (globally) restores the original text, and
  redoing everything restores the final text — regardless of the op mix;
* a user's local undo only ever removes the effects of that user's own
  operations.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.collab import CollaborationServer
from repro.errors import UndoError

words = st.text(
    alphabet=st.characters(min_codepoint=97, max_codepoint=122),
    min_size=1, max_size=6,
)

# An op is (user_index, kind, position_seed, payload)
ops = st.lists(
    st.tuples(
        st.integers(0, 1),
        st.sampled_from(["insert", "delete"]),
        st.integers(0, 1000),
        words,
    ),
    min_size=1, max_size=15,
)


def _build(ops_list):
    server = CollaborationServer()
    server.register_user("u0")
    server.register_user("u1")
    s0 = server.connect("u0")
    s1 = server.connect("u1")
    handle = s0.create_document("d", text="base text ")
    s1.open(handle.doc)
    sessions = [s0, s1]
    original = handle.text()
    applied = 0
    for user, kind, pos_seed, payload in ops_list:
        session = sessions[user]
        length = handle.length()
        if kind == "insert":
            session.insert(handle.doc, pos_seed % (length + 1), payload)
            applied += 1
        else:
            if length == 0:
                continue
            pos = pos_seed % length
            count = min(len(payload), length - pos)
            if count == 0:
                continue
            session.delete(handle.doc, pos, count)
            applied += 1
    return server, sessions, handle, original, applied


@settings(max_examples=40, deadline=None)
@given(ops)
def test_global_undo_everything_restores_original(ops_list):
    server, sessions, handle, original, applied = _build(ops_list)
    final = handle.text()
    for __ in range(applied):
        sessions[0].undo_global(handle.doc)
    assert handle.text() == original
    # And redo everything brings the final text back.
    for __ in range(applied):
        sessions[0].redo_global(handle.doc)
    assert handle.text() == final
    assert handle.check_integrity() == []
    # Size metadata must track the visible length exactly, even through
    # overlapping undo/redo histories.
    assert server.documents.meta(handle.doc)["size"] == handle.length()


@settings(max_examples=40, deadline=None)
@given(ops)
def test_local_undo_exhausts_only_own_ops(ops_list):
    server, sessions, handle, original, applied = _build(ops_list)
    own = server.undo.undo_depth(handle.doc, "u0")
    for __ in range(own):
        sessions[0].undo(handle.doc)
    # No more local undo available for u0.
    try:
        sessions[0].undo(handle.doc)
        raise AssertionError("expected UndoError")
    except UndoError:
        pass
    # Other user's ops are still all present in the history.
    assert server.undo.undo_depth(handle.doc, "u1") == \
        sum(1 for r in server.undo.history(handle.doc)
            if r.user == "u1" and not r.undone)
    assert handle.check_integrity() == []


@settings(max_examples=25, deadline=None)
@given(ops, st.integers(1, 5))
def test_undo_redo_cycles_are_stable(ops_list, cycles):
    """N undo/redo cycles leave the text exactly at the final state."""
    server, sessions, handle, original, applied = _build(ops_list)
    final = handle.text()
    depth = min(applied, 3)
    for __ in range(cycles):
        done = 0
        for __ in range(depth):
            try:
                sessions[0].undo_global(handle.doc)
                done += 1
            except UndoError:
                break
        for __ in range(done):
            sessions[0].redo_global(handle.doc)
    assert handle.text() == final
