"""Thread-based stress tests for the transaction machinery.

These verify that strict 2PL + read-committed visibility hold up under
real thread interleavings: lost updates are impossible, deadlocks are
detected and recoverable, and the WAL stays replayable.
"""

from __future__ import annotations

import threading

import pytest

from repro.db import Database, col, column, recover
from repro.errors import DeadlockError, LockTimeoutError, TransactionError


@pytest.fixture
def db():
    db = Database("stress", lock_timeout=10.0)
    db.create_table("counters", [column("name", "str"),
                                 column("value", "int")], key="name")
    return db


def _increment(db: Database, rowid: int, retries: int = 50) -> None:
    """Read-modify-write increment with retry on conflict."""
    for __ in range(retries):
        txn = db.begin()
        try:
            row = txn.get_for_update("counters", rowid)
            txn.update("counters", rowid, {"value": row["value"] + 1})
            txn.commit()
            return
        except (DeadlockError, LockTimeoutError):
            if txn.is_active:
                txn.abort()
        except TransactionError:
            raise
    raise AssertionError("increment starved")


class TestNoLostUpdates:
    def test_concurrent_increments_all_counted(self, db):
        rowid = db.insert("counters", {"name": "hits", "value": 0})
        n_threads, n_increments = 8, 50
        errors = []

        def worker():
            try:
                for __ in range(n_increments):
                    _increment(db, rowid)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=worker)
                   for __ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        assert db.get("counters", rowid)["value"] == \
            n_threads * n_increments

    def test_wal_replayable_after_contention(self, db):
        rowid = db.insert("counters", {"name": "hits", "value": 0})
        threads = [
            threading.Thread(
                target=lambda: [_increment(db, rowid) for __ in range(20)])
            for __ in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        recovered = recover(db.wal.records())
        assert recovered.get("counters", rowid)["value"] == 80


class TestCrossRowDeadlocks:
    def test_opposing_lock_orders_resolve(self, db):
        a = db.insert("counters", {"name": "a", "value": 0})
        b = db.insert("counters", {"name": "b", "value": 0})
        barrier = threading.Barrier(2)
        outcomes = []

        def transfer(first: int, second: int) -> None:
            import random
            import time
            for attempt in range(30):
                if attempt:
                    # Jittered backoff: without it the two threads can
                    # livelock re-deadlocking in lockstep forever.
                    time.sleep(random.random() * 0.01 * attempt)
                txn = db.begin(lock_timeout=2.0)
                try:
                    row1 = txn.get_for_update("counters", first)
                    txn.update("counters", first,
                               {"value": row1["value"] + 1})
                    if len(outcomes) == 0:
                        try:
                            barrier.wait(timeout=1.0)
                        except threading.BrokenBarrierError:
                            pass
                    row2 = txn.get_for_update("counters", second)
                    txn.update("counters", second,
                               {"value": row2["value"] - 1})
                    txn.commit()
                    outcomes.append("ok")
                    return
                except (DeadlockError, LockTimeoutError):
                    if txn.is_active:
                        txn.abort()
            outcomes.append("starved")

        t1 = threading.Thread(target=transfer, args=(a, b))
        t2 = threading.Thread(target=transfer, args=(b, a))
        t1.start()
        t2.start()
        t1.join(timeout=30)
        t2.join(timeout=30)
        assert outcomes.count("ok") == 2
        # Conservation: +1/-1 per successful transfer, two transfers.
        total = (db.get("counters", a)["value"]
                 + db.get("counters", b)["value"])
        assert total == 0


class TestReadersNeverBlock:
    def test_reads_proceed_during_long_write(self, db):
        rowid = db.insert("counters", {"name": "x", "value": 1})
        writer = db.begin()
        writer.update("counters", rowid, {"value": 99})
        results = []

        def reader():
            results.append(db.get("counters", rowid)["value"])

        thread = threading.Thread(target=reader)
        thread.start()
        thread.join(timeout=2)
        assert results == [1]  # committed value, no blocking
        writer.commit()
        assert db.get("counters", rowid)["value"] == 99

    def test_scan_during_writes(self, db):
        for i in range(20):
            db.insert("counters", {"name": f"c{i}", "value": i})
        stop = threading.Event()
        errors = []

        def scanner():
            try:
                while not stop.is_set():
                    rows = db.query("counters").where(
                        col("value") >= 0).run()
                    assert len(rows) >= 20
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        thread = threading.Thread(target=scanner)
        thread.start()
        for i in range(50):
            db.insert("counters", {"name": f"new{i}", "value": i})
        stop.set()
        thread.join(timeout=5)
        assert errors == []


class TestSnapshotScannersLockFree:
    """MVCC interference contract, asserted through the obs metrics.

    Concurrent snapshot scanners must add *zero* ``lock.acquired``
    traffic (their reads resolve from version chains), every sweep must
    return a transactionally consistent view, and the writers' latency
    distribution must stay within an order of magnitude of running
    scanner-free — snapshot readers never queue a keystroke.
    """

    def test_scanners_acquire_zero_locks_and_stay_consistent(self, db):
        n_rows = 30
        rowids = [db.insert("counters", {"name": f"c{i}", "value": 0})
                  for i in range(n_rows)]
        registry = db.obs.registry
        stop = threading.Event()
        errors = []
        sweeps = [0, 0]
        latencies: list[float] = []

        def writer():
            # Each commit moves two rows by +1/-1 in one transaction, so
            # the table-wide sum is invariantly zero at every commit
            # point — the consistency probe scanners check against.
            import time
            try:
                for i in range(60):
                    started = time.perf_counter()
                    txn = db.begin()
                    a, b = rowids[i % n_rows], rowids[(i + 7) % n_rows]
                    row_a = txn.get_for_update("counters", a)
                    row_b = txn.get_for_update("counters", b)
                    txn.update("counters", a, {"value": row_a["value"] + 1})
                    txn.update("counters", b, {"value": row_b["value"] - 1})
                    txn.commit()
                    latencies.append(time.perf_counter() - started)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        def scanner(idx: int):
            try:
                while not stop.is_set():
                    with db.snapshot() as snap:
                        rows = snap.query("counters").run()
                        # Transactional consistency: a sweep interleaved
                        # with +1/-1 commits must never see a half of one.
                        assert sum(r["value"] for r in rows) == 0, \
                            "snapshot saw a torn transfer"
                        assert len(rows) == n_rows
                    sweeps[idx] += 1
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        before_locks = registry.counter("lock.acquired").value
        before_snap_reads = registry.counter("txn.snapshot_reads").value

        writer_thread = threading.Thread(target=writer)
        writer_thread.start()
        scan_threads = [threading.Thread(target=scanner, args=(i,))
                        for i in range(2)]
        for t in scan_threads:
            t.start()
        writer_thread.join(timeout=30)
        stop.set()
        for t in scan_threads:
            t.join(timeout=10)
        assert errors == []
        assert all(n > 0 for n in sweeps), "a scanner never swept"

        # The writer is single-threaded over disjoint-locked rows: its
        # lock traffic is exactly deterministic (2 reads + 2 updates on 2
        # distinct rows = 2 grants per transaction).  Any extra grant
        # would have to come from a scanner.
        lock_delta = registry.counter("lock.acquired").value - before_locks
        assert lock_delta == 60 * 2, \
            f"snapshot scanners acquired locks ({lock_delta - 120:+d})"
        assert registry.counter("txn.snapshot_reads").value \
            > before_snap_reads

        # Keystroke-latency bound: the writer never waits on a reader,
        # so even its slowest commit stays well under the 10 s lock
        # timeout that blocking readers would push it toward.
        assert len(latencies) == 60
        assert max(latencies) < 2.0, \
            f"writer stalled {max(latencies):.2f}s behind snapshot readers"

    def test_version_gc_runs_under_load(self, db):
        """Superseded versions do not accumulate once pins close."""
        rowid = db.insert("counters", {"name": "gc", "value": 0})
        with db.snapshot() as snap:
            for i in range(40):
                db.update("counters", rowid, {"value": i + 1})
            assert snap.get("counters", rowid)["value"] == 0
            assert db.live_versions() > 0
            # The pin holds the chain down: GC below the watermark keeps
            # everything the snapshot still needs.
            db.gc_versions()
            assert snap.get("counters", rowid)["value"] == 0
        db.gc_versions()
        assert db.live_versions() == 0
        assert db.get("counters", rowid)["value"] == 40
