"""Property-based tests (hypothesis) for MVCC snapshot isolation.

The contract pinned down here:

* a snapshot transaction's view is *frozen* at ``begin``: whatever
  writers commit afterwards — updates, deletes, re-inserts, whole
  transactions aborted halfway — every later read through the snapshot
  returns exactly the committed state that existed when it was opened;
* a snapshot never sees *uncommitted* staging, even from a write
  transaction that was already open when the snapshot was pinned;
* version-chain GC may run at any point and must be invisible to every
  open snapshot (the watermark protects pinned LSNs);
* the whole read path is lock-free: the model machine asserts the
  ``lock.acquired`` counter never moves while snapshot reads run.

The stateful machine drives random interleavings of one write
transaction, a pool of up to four open snapshots, direct autocommit
writes and GC sweeps, against dict models frozen per snapshot.

The nightly CI arm re-runs this file at a larger examples budget
(``MVCC_PROPERTY_PROFILE=nightly``); the default budget keeps it tier-1
cheap.
"""

from __future__ import annotations

import os

from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    Bundle,
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)

from repro.db import Database, col, column
from repro.errors import ReadOnlyTransactionError

#: Examples/steps scale for the nightly arm without a separate file.
_NIGHTLY = os.environ.get("MVCC_PROPERTY_PROFILE") == "nightly"
MAX_EXAMPLES = 300 if _NIGHTLY else 40
STEP_COUNT = 60 if _NIGHTLY else 30


def _fresh_db() -> Database:
    db = Database("mvcc-prop")
    db.create_table(
        "t", [column("v", "int"), column("tag", "str", nullable=True)]
    )
    return db


def _snapshot_view(db: Database, txn) -> dict[int, dict]:
    return {r.rowid: dict(r) for r in txn.query("t").run()}


# ---------------------------------------------------------------------------
# Directed properties
# ---------------------------------------------------------------------------

values = st.integers(min_value=-5, max_value=5)


@settings(max_examples=MAX_EXAMPLES, deadline=None)
@given(st.lists(st.tuples(st.sampled_from(["insert", "update", "delete"]),
                          values),
                min_size=1, max_size=20))
def test_snapshot_view_frozen_under_any_write_sequence(ops):
    """Any committed write sequence after the pin is invisible to it."""
    db = _fresh_db()
    rowids = [db.insert("t", {"v": v, "tag": None}) for v in range(3)]
    snap = db.begin(read_only=True)
    frozen = _snapshot_view(db, snap)
    for kind, v in ops:
        if kind == "insert":
            rowids.append(db.insert("t", {"v": v, "tag": "late"}))
        elif kind == "update" and rowids:
            db.update("t", rowids[v % len(rowids)], {"v": v})
        elif kind == "delete" and rowids:
            rowid = rowids.pop(v % len(rowids))
            if db.table("t").read(rowid) is not None:
                db.delete("t", rowid)
    assert _snapshot_view(db, snap) == frozen
    snap.commit()
    db.close()


@settings(max_examples=MAX_EXAMPLES, deadline=None)
@given(st.lists(values, min_size=1, max_size=10), values)
def test_gc_invisible_to_open_snapshots(updates, probe):
    """A GC sweep between reads never changes what a snapshot sees."""
    db = _fresh_db()
    rowid = db.insert("t", {"v": 0, "tag": None})
    snap = db.begin(read_only=True)
    frozen = _snapshot_view(db, snap)
    for v in updates:
        db.update("t", rowid, {"v": v})
    db.gc_versions()
    assert _snapshot_view(db, snap) == frozen
    assert snap.get("t", rowid)["v"] == 0
    snap.commit()
    # With the pin released the chain is garbage; GC may now drop it all.
    db.gc_versions()
    assert db.live_versions() == 0
    db.close()


@settings(max_examples=MAX_EXAMPLES, deadline=None)
@given(values)
def test_snapshot_rejects_writes(v):
    db = _fresh_db()
    rowid = db.insert("t", {"v": 0, "tag": None})
    with db.snapshot() as snap:
        for attempt in (
            lambda: snap.insert("t", {"v": v, "tag": None}),
            lambda: snap.update("t", rowid, {"v": v}),
            lambda: snap.delete("t", rowid),
        ):
            try:
                attempt()
            except ReadOnlyTransactionError:
                pass
            else:
                raise AssertionError("snapshot accepted a write")
    db.close()


# ---------------------------------------------------------------------------
# The stateful machine
# ---------------------------------------------------------------------------


class SnapshotIsolationMachine(RuleBasedStateMachine):
    """Random writer/snapshot interleavings vs per-snapshot frozen models.

    The committed dict model plays the same role as in
    :mod:`tests.test_db_property`; on top of it, every open snapshot
    carries the copy of that model taken when it was pinned, and the
    invariants re-read each snapshot after every step.
    """

    rowids = Bundle("rowids")

    @initialize()
    def setup(self):
        self.db = _fresh_db()
        self.committed: dict[int, dict] = {}
        self.staged: dict[int, dict | None] = {}
        self.txn = None
        #: snapshot txn -> the committed model frozen at its begin.
        self.snapshots: dict = {}
        self._lock_counter = self.db.obs.registry.counter("lock.acquired")

    def teardown(self):
        for snap in self.snapshots:
            snap.abort()
        if self.txn is not None:
            self.txn.abort()
        self.db.close()

    # -- write transaction control ------------------------------------------

    @rule()
    def begin(self):
        if self.txn is None:
            self.txn = self.db.begin()
            self.staged = {}

    @rule()
    def commit(self):
        if self.txn is not None:
            self.txn.commit()
            for rowid, row in self.staged.items():
                if row is None:
                    self.committed.pop(rowid, None)
                else:
                    self.committed[rowid] = row
            self.staged = {}
            self.txn = None

    @rule()
    def abort(self):
        if self.txn is not None:
            self.txn.abort()
            self.staged = {}
            self.txn = None

    # -- snapshot control ---------------------------------------------------

    @rule()
    def open_snapshot(self):
        if len(self.snapshots) < 4:
            snap = self.db.begin(read_only=True)
            # Frozen view = committed state only: staging of the open
            # write transaction must be invisible however the snapshot
            # interleaves with it.
            self.snapshots[snap] = dict(self.committed)

    @rule()
    def close_oldest_snapshot(self):
        if self.snapshots:
            snap = next(iter(self.snapshots))
            del self.snapshots[snap]
            snap.commit()

    @rule()
    def gc(self):
        self.db.gc_versions()

    # -- DML ----------------------------------------------------------------

    @rule(target=rowids, v=st.integers(-5, 5),
          tag=st.sampled_from(["a", "b", None]))
    def insert(self, v, tag):
        values = {"v": v, "tag": tag}
        if self.txn is None:
            rowid = self.db.insert("t", values)
            self.committed[rowid] = values
        else:
            rowid = self.txn.insert("t", values)
            self.staged[rowid] = values
        return rowid

    @rule(rowid=rowids, v=st.integers(-5, 5))
    def update(self, rowid, v):
        live = self._visible()
        if rowid not in live:
            return
        new_row = dict(live[rowid], v=v)
        if self.txn is None:
            self.db.update("t", rowid, {"v": v})
            self.committed[rowid] = new_row
        else:
            self.txn.update("t", rowid, {"v": v})
            self.staged[rowid] = new_row

    @rule(rowid=rowids)
    def delete(self, rowid):
        live = self._visible()
        if rowid not in live:
            return
        if self.txn is None:
            self.db.delete("t", rowid)
            del self.committed[rowid]
        else:
            self.txn.delete("t", rowid)
            self.staged[rowid] = None

    def _visible(self) -> dict[int, dict]:
        view = dict(self.committed)
        for rowid, row in self.staged.items():
            if row is None:
                view.pop(rowid, None)
            else:
                view[rowid] = row
        return view

    # -- invariants ---------------------------------------------------------

    @invariant()
    def snapshots_stay_frozen_and_lock_free(self):
        before = self._lock_counter.value
        for snap, frozen in self.snapshots.items():
            assert _snapshot_view(self.db, snap) == frozen
            # Point reads agree with the scan (index/scan path parity).
            for rowid, row in frozen.items():
                assert snap.get("t", rowid) == row
            filtered = snap.query("t").where(col("v") > 0).count()
            assert filtered == sum(
                1 for r in frozen.values() if r["v"] > 0)
        assert self._lock_counter.value == before, \
            "snapshot reads acquired locks"

    @invariant()
    def committed_state_matches_model(self):
        rows = {r.rowid: dict(r) for r in self.db.query("t").run()}
        assert rows == self.committed

    @invariant()
    def version_gauge_never_negative(self):
        assert self.db.live_versions() >= 0


TestSnapshotIsolation = SnapshotIsolationMachine.TestCase
TestSnapshotIsolation.settings = settings(
    max_examples=MAX_EXAMPLES, stateful_step_count=STEP_COUNT, deadline=None
)
