"""Cross-subsystem consistency properties (oracle tests).

Two event-driven caches power the paper's headline features: dynamic
folder membership and the search index.  Both must stay *equivalent to
recomputing from scratch* under arbitrary editing histories — these
hypothesis suites check exactly that.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db import Database
from repro.folders import (
    AuthoredBy,
    CreatorIs,
    DynamicFolderManager,
    NameContains,
    SizeAtLeast,
    StateIs,
)
from repro.mining.features import tokenize
from repro.search import InvertedIndex
from repro.text import DocumentStore

# An event programme: each entry mutates the corpus somehow.
events = st.lists(
    st.tuples(
        st.sampled_from(["create", "insert", "delete", "state", "rename"]),
        st.integers(0, 5),          # document selector
        st.integers(0, 100),        # position seed
        st.text(alphabet="abcdef xyz", min_size=1, max_size=10),
    ),
    min_size=1, max_size=25,
)


def _apply_events(store: DocumentStore, handles: list, event_list) -> None:
    creators = ["ana", "ben"]
    states = ["draft", "review", "final"]
    for kind, selector, pos_seed, payload in event_list:
        if kind == "create" or not handles:
            handles.append(store.create(
                payload.strip() or "doc", creators[selector % 2],
                text=payload))
            continue
        handle = handles[selector % len(handles)]
        if kind == "insert":
            pos = pos_seed % (handle.length() + 1)
            handle.insert_text(pos, payload,
                               creators[pos_seed % 2])
        elif kind == "delete":
            if handle.length() == 0:
                continue
            pos = pos_seed % handle.length()
            count = min(len(payload), handle.length() - pos)
            if count:
                handle.delete_range(pos, count, creators[pos_seed % 2])
        elif kind == "state":
            store.set_state(handle.doc, states[pos_seed % 3], "ana")
        elif kind == "rename":
            # Renaming is modelled as a property change + state churn.
            store.set_property(handle.doc, "label", payload, "ana")


class TestDynamicFolderEquivalence:
    """Incremental membership == full revalidation, always."""

    CONDITIONS = [
        ("creator-ana", CreatorIs("ana")),
        ("finals", StateIs("final")),
        ("big", SizeAtLeast(8)),
        ("xyz-docs", NameContains("xyz")),
        ("ben-wrote", AuthoredBy("ben", 2)),
        ("combo", CreatorIs("ana") & SizeAtLeast(4)),
        ("either", StateIs("review") | SizeAtLeast(20)),
        ("negated", ~CreatorIs("ben")),
    ]

    @settings(max_examples=40, deadline=None)
    @given(events)
    def test_incremental_matches_rescan(self, event_list):
        db = Database("prop")
        store = DocumentStore(db, log_reads=False, log_writes=False)
        manager = DynamicFolderManager(db)
        folders = [manager.create_folder(name, cond)
                   for name, cond in self.CONDITIONS]
        handles: list = []
        _apply_events(store, handles, event_list)
        for folder in folders:
            incremental = set(folder.contents())
            folder.revalidate()
            assert incremental == set(folder.contents()), folder.name


class TestSearchIndexEquivalence:
    """Incrementally maintained postings == indexing from scratch."""

    @settings(max_examples=40, deadline=None)
    @given(events)
    def test_dirty_refresh_matches_rebuild(self, event_list):
        db = Database("prop")
        store = DocumentStore(db, log_reads=False, log_writes=False)
        index = InvertedIndex(db)
        handles: list = []
        _apply_events(store, handles, event_list)
        index.ensure_fresh()
        incremental = {
            term: index.postings(term)
            for handle in handles
            for term in tokenize(handle.text())
        }
        fresh = InvertedIndex(db)
        for term, postings in incremental.items():
            assert fresh.postings(term) == postings, term
        assert fresh.doc_count() == index.doc_count()
        for handle in handles:
            assert fresh.cached_text(handle.doc) == \
                index.cached_text(handle.doc)

    @settings(max_examples=25, deadline=None)
    @given(events, st.text(alphabet="abcdef xyz", min_size=1, max_size=6))
    def test_matching_docs_agree_with_scan(self, event_list, needle):
        db = Database("prop")
        store = DocumentStore(db, log_reads=False, log_writes=False)
        index = InvertedIndex(db)
        handles: list = []
        _apply_events(store, handles, event_list)
        index.ensure_fresh()
        terms = tokenize(needle)
        if not terms:
            return
        expected = {
            handle.doc for handle in handles
            if all(term in tokenize(handle.text()) for term in terms)
        }
        assert index.matching_docs(terms) == expected
