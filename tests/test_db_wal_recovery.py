"""Tests for the write-ahead log and crash recovery."""

import pytest

from repro.db import Database, column, recover, recover_file
from repro.db import wal as walmod
from repro.db.wal import WriteAheadLog, committed_txn_ids, decode_value, encode_value
from repro.errors import WalError
from repro.ids import Oid


def make_db(**kwargs) -> Database:
    db = Database("t", **kwargs)
    db.create_table(
        "docs",
        [column("title", "str"), column("size", "int", default=0)],
        key="title",
    )
    db.create_index("docs", "size", kind="ordered")
    return db


class TestWal:
    def test_lsns_are_monotonic(self):
        wal = WriteAheadLog()
        records = [wal.append(walmod.BEGIN, i) for i in range(5)]
        lsns = [r.lsn for r in records]
        assert lsns == sorted(lsns)
        assert len(set(lsns)) == 5

    def test_unknown_type_rejected(self):
        wal = WriteAheadLog()
        with pytest.raises(WalError):
            wal.append("NOT_A_TYPE", 1)

    def test_committed_txn_ids(self):
        wal = WriteAheadLog()
        wal.append(walmod.BEGIN, 1)
        wal.append(walmod.BEGIN, 2)
        wal.append(walmod.COMMIT, 1)
        wal.append(walmod.ABORT, 2)
        assert committed_txn_ids(wal.records()) == {1}

    def test_truncate_before(self):
        wal = WriteAheadLog()
        for i in range(10):
            wal.append(walmod.BEGIN, i)
        dropped = wal.truncate_before(6)
        assert dropped == 5
        assert all(r.lsn >= 6 for r in wal.records())

    def test_value_encoding_roundtrip(self):
        values = {
            "oid": Oid("doc", 3),
            "data": b"\x00\xff",
            "nested": [{"k": Oid("c", 1)}, 2, None],
        }
        assert decode_value(encode_value(values)) == values


class TestRecoveryInMemory:
    def test_committed_changes_survive(self):
        db = make_db()
        db.insert("docs", {"title": "a", "size": 10})
        db.insert("docs", {"title": "b", "size": 20})
        recovered = recover(db.wal.records())
        assert recovered.query("docs").count() == 2
        assert recovered.query("docs").where(
            __import__("repro.db", fromlist=["col"]).col("title") == "a"
        ).run()[0]["size"] == 10

    def test_uncommitted_changes_lost(self):
        db = make_db()
        db.insert("docs", {"title": "a"})
        txn = db.begin()
        txn.insert("docs", {"title": "b"})
        # Crash before commit: recover from the log as-is.
        recovered = recover(db.wal.records())
        assert recovered.query("docs").count() == 1

    def test_aborted_changes_lost(self):
        db = make_db()
        txn = db.begin()
        txn.insert("docs", {"title": "x"})
        txn.abort()
        recovered = recover(db.wal.records())
        assert recovered.query("docs").count() == 0

    def test_updates_and_deletes_replayed(self):
        db = make_db()
        rid = db.insert("docs", {"title": "a", "size": 1})
        db.update("docs", rid, {"size": 5})
        rid2 = db.insert("docs", {"title": "b"})
        db.delete("docs", rid2)
        recovered = recover(db.wal.records())
        rows = recovered.query("docs").run()
        assert len(rows) == 1
        assert rows[0]["size"] == 5

    def test_ddl_replayed(self):
        db = make_db()
        recovered = recover(db.wal.records())
        assert recovered.has_table("docs")
        info = recovered.catalog.table_info("docs")
        assert info.key == "title"
        assert "docs_size_ordered" in info.index_names

    def test_drop_table_replayed(self):
        db = make_db()
        db.create_table("tmp", [column("x", "int")])
        db.drop_table("tmp")
        recovered = recover(db.wal.records())
        assert not recovered.has_table("tmp")

    def test_recovered_db_accepts_new_writes(self):
        db = make_db()
        db.insert("docs", {"title": "a"})
        recovered = recover(db.wal.records())
        recovered.insert("docs", {"title": "b"})
        assert recovered.query("docs").count() == 2

    def test_rowids_not_reused_after_recovery(self):
        db = make_db()
        rid = db.insert("docs", {"title": "a"})
        recovered = recover(db.wal.records())
        new_rid = recovered.insert("docs", {"title": "b"})
        assert new_rid != rid


class TestCheckpoint:
    def test_recovery_from_checkpoint(self):
        db = make_db()
        db.insert("docs", {"title": "a", "size": 1})
        lsn = db.checkpoint()
        db.insert("docs", {"title": "b", "size": 2})
        db.wal.truncate_before(lsn)  # pre-checkpoint history gone
        recovered = recover(db.wal.records())
        assert recovered.query("docs").count() == 2

    def test_checkpoint_preserves_indexes(self):
        db = make_db()
        db.insert("docs", {"title": "a", "size": 9})
        lsn = db.checkpoint()
        db.wal.truncate_before(lsn)
        recovered = recover(db.wal.records())
        from repro.db import col
        plan = recovered.query("docs").where(col("size") >= 5).plan()
        assert plan.kind == "index"

    def test_post_checkpoint_delete_replayed(self):
        db = make_db()
        rid = db.insert("docs", {"title": "a"})
        lsn = db.checkpoint()
        db.delete("docs", rid)
        db.wal.truncate_before(lsn)
        recovered = recover(db.wal.records())
        assert recovered.query("docs").count() == 0


class TestFileRecovery:
    def test_crash_and_recover_from_file(self, tmp_path):
        path = str(tmp_path / "wal.jsonl")
        db = make_db(wal_path=path)
        db.insert("docs", {"title": "a", "size": 7})
        txn = db.begin()
        txn.insert("docs", {"title": "uncommitted"})
        db.close()  # "crash": uncommitted txn never commits

        recovered = recover_file(path)
        rows = recovered.query("docs").run()
        assert [r["title"] for r in rows] == ["a"]

    def test_torn_tail_line_tolerated(self, tmp_path):
        path = str(tmp_path / "wal.jsonl")
        db = make_db(wal_path=path)
        db.insert("docs", {"title": "a"})
        db.close()
        with open(path, "a", encoding="utf-8") as f:
            f.write('{"lsn": 999, "type": "INSERT", "txn"')  # torn record
        with pytest.warns(RuntimeWarning, match="torn trailing WAL record"):
            recovered = recover_file(path)
        assert recovered.query("docs").count() == 1


class TestRecoveryErrors:
    def test_unknown_table_reference_raises(self):
        from repro.db import wal as walmod
        from repro.db.wal import WalRecord
        from repro.errors import RecoveryError
        records = [
            WalRecord(1, walmod.BEGIN, 1),
            WalRecord(2, walmod.INSERT, 1,
                      {"table": "ghost", "rowid": 1, "values": {}}),
            WalRecord(3, walmod.COMMIT, 1),
        ]
        with pytest.raises(RecoveryError):
            recover(records)

    def test_delete_on_missing_table_tolerated(self):
        """A DELETE for a table dropped later in history must not crash."""
        from repro.db import wal as walmod
        from repro.db.wal import WalRecord
        records = [
            WalRecord(1, walmod.BEGIN, 1),
            WalRecord(2, walmod.DELETE, 1, {"table": "ghost", "rowid": 1}),
            WalRecord(3, walmod.COMMIT, 1),
        ]
        recovered = recover(records)   # no exception
        assert recovered.tables() == []

    def test_create_index_replay_idempotent(self):
        db = make_db()
        # Replaying records twice (e.g. checkpoint overlap) must not
        # fail on the already-present index.
        records = list(db.wal.records()) + list(db.wal.records())
        recovered = recover(
            [r for r in records if r.type.startswith("CREATE")]
        )
        assert recovered.has_table("docs")
