"""Labelled metric families: naming, cardinality bounds, catalogue.

The contract: ``registry.counter(name, labels={...})`` routes through a
:class:`~repro.obs.labels.MetricFamily` whose children are real metrics
registered under ``base{k=v,...}`` decorated names (keys sorted, hostile
characters scrubbed), bounded by an LRU cap whose evictions are counted
in ``obs.label_evictions`` — so a label-cardinality explosion degrades
into visible evictions, never unbounded memory.
"""

from __future__ import annotations

import pytest

from repro.obs import (
    LABEL_EVICTIONS,
    LABELLED_FAMILIES,
    METRIC_CATALOGUE,
    MetricsRegistry,
    NullRegistry,
    labelled_name,
    split_labelled,
    unknown_names,
)


class TestNaming:
    def test_labelled_name_sorts_keys(self):
        assert labelled_name("m", {"b": "2", "a": "1"}) == "m{a=1,b=2}"

    def test_split_round_trips(self):
        name = labelled_name("collab.notifications", {"doc": "d:1"})
        base, labels = split_labelled(name)
        assert base == "collab.notifications"
        assert labels == {"doc": "d:1"}

    def test_split_plain_name_returns_none_labels(self):
        assert split_labelled("txn.begun") == ("txn.begun", None)

    def test_hostile_label_values_are_scrubbed(self):
        name = labelled_name("m", {"k": 'a{b}=c,"\n'})
        base, labels = split_labelled(name)
        assert base == "m"
        # Forbidden structural characters became underscores, so the
        # decorated name still parses unambiguously.
        assert labels == {"k": "a_b__c___"}


class TestFamilies:
    def test_children_are_real_metrics_in_the_snapshot(self):
        registry = MetricsRegistry()
        registry.counter("ops", labels={"verb": "insert"}).inc(3)
        registry.counter("ops", labels={"verb": "delete"}).inc()
        snap = registry.snapshot()
        assert snap["ops{verb=insert}"]["value"] == 3
        assert snap["ops{verb=delete}"]["value"] == 1

    def test_same_labels_return_same_child(self):
        registry = MetricsRegistry()
        a = registry.counter("ops", labels={"verb": "insert"})
        b = registry.counter("ops", labels={"verb": "insert"})
        assert a is b

    def test_empty_labels_rejected(self):
        registry = MetricsRegistry()
        family = registry.family("ops", "counter")
        with pytest.raises(ValueError):
            family.labels()

    def test_kind_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.family("ops", "counter")
        with pytest.raises(TypeError):
            registry.family("ops", "gauge")

    def test_histogram_children_share_buckets(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat", buckets=(1.0, 2.0),
                                  labels={"verb": "x"})
        hist.observe(1.5)
        snap = registry.snapshot()
        assert snap["lat{verb=x}"]["count"] == 1


class TestCardinalityBound:
    def test_lru_evicts_oldest_series_and_counts_it(self):
        registry = MetricsRegistry()
        family = registry.family("ops", "counter", max_series=2)
        for i in range(5):
            family.labels(conn=str(i)).inc()
        snap = registry.snapshot()
        live = [n for n in snap if n.startswith("ops{")]
        assert len(live) == 2
        assert "ops{conn=4}" in live and "ops{conn=3}" in live
        assert snap[LABEL_EVICTIONS]["value"] == 3
        assert family.series_count() == 2

    def test_hot_series_survive_the_lru(self):
        registry = MetricsRegistry()
        family = registry.family("ops", "counter", max_series=2)
        hot = family.labels(conn="hot")
        for i in range(10):
            family.labels(conn=str(i)).inc()
            assert family.labels(conn="hot") is hot
        assert "ops{conn=hot}" in registry.snapshot()

    def test_evicted_series_recreated_fresh(self):
        registry = MetricsRegistry()
        family = registry.family("ops", "counter", max_series=1)
        family.labels(conn="a").inc(7)
        family.labels(conn="b").inc()      # evicts a
        assert family.labels(conn="a").value == 0


class TestCatalogueValidation:
    def test_labelled_names_with_allowed_keys_pass(self):
        names = [labelled_name(base, {key: "v" for key in keys})
                 for base, keys in LABELLED_FAMILIES.items()]
        assert unknown_names(names) == []

    def test_disallowed_label_key_rejected(self):
        name = labelled_name("collab.notifications", {"bogus": "x"})
        assert unknown_names([name])

    def test_unlabelled_base_rejected(self):
        # txn.begun is catalogued but not a labelled family.
        assert unknown_names(["txn.begun{doc=x}"])

    def test_uncatalogued_base_rejected(self):
        assert unknown_names(["no.such.metric{doc=x}"])

    def test_labelled_families_are_all_catalogued(self):
        for base in LABELLED_FAMILIES:
            assert base in METRIC_CATALOGUE


class TestNullRegistry:
    def test_labels_kwarg_is_inert(self):
        registry = NullRegistry()
        registry.counter("x", labels={"a": "b"}).inc()
        family = registry.family("x", "counter")
        family.labels(a="b").inc()
        assert registry.snapshot() == {}
