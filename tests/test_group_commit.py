"""Group-commit WAL and batched edit-transaction regression tests.

The contract under test (ISSUE 4 tentpole):

* Under K concurrent committing sessions the WAL performs strictly
  fewer than K·M fsyncs for K·M commits (the barrier groups them), while
  **every acknowledged commit survives** ``power_off(lose_unsynced=True)``
  — the durable-LSN acknowledgement is only given after the group's fsync
  covered the commit's record.
* A leader dying mid-group must not leave followers believing they are
  durable: they raise :class:`~repro.errors.CrashSignal` instead.
* ``Database.batch()`` coalesces a burst of editing operations into one
  transaction — one COMMIT record, one (grouped) fsync — aborts
  atomically, and keeps the causal trace linking every batched keystroke
  to the batch's fsync.
"""

import threading
import time

import pytest

from repro.collab import CollaborationServer, EditorClient
from repro.db.engine import Database
from repro.db.recovery import recover_file
from repro.db.schema import column
from repro.errors import CrashSignal
from repro.faults import FaultInjector, FaultPlan
from repro.obs.export import TraceBuffer


def make_db(tmp_path, **kwargs):
    db = Database(wal_path=str(tmp_path / "wal.jsonl"), **kwargs)
    db.create_table("notes", [column("body", "str")])
    return db


# ---------------------------------------------------------------------------
# Group-commit barrier: fsync sublinearity + durability of acked commits
# ---------------------------------------------------------------------------

class TestGroupCommitBarrier:
    def test_fsyncs_sublinear_and_acked_commits_survive_power_loss(
            self, tmp_path):
        """K concurrent committers share fsyncs; every ack is durable."""
        writers, rounds = 8, 4
        db = make_db(tmp_path, wal_group_window=0.01, wal_group_max=writers)
        barrier = threading.Barrier(writers)
        acked: list[str] = []
        acked_lock = threading.Lock()
        errors: list[BaseException] = []

        def run(worker: int) -> None:
            try:
                for i in range(rounds):
                    barrier.wait()
                    body = f"w{worker}-r{i}"
                    with db.transaction() as txn:
                        txn.insert("notes", {"body": body})
                    # The context exit returned: this commit was
                    # acknowledged durable.
                    with acked_lock:
                        acked.append(body)
            except BaseException as exc:  # pragma: no cover - fail loud
                errors.append(exc)

        threads = [threading.Thread(target=run, args=(w,))
                   for w in range(writers)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(acked) == writers * rounds

        snap = db.metrics_snapshot()
        commits = writers * rounds
        fsyncs = snap["wal.fsyncs"]["value"]
        # Strictly sub-linear: the barrier must have grouped commits.
        assert fsyncs < commits, (fsyncs, commits)
        assert snap["wal.group_commit_size"]["max"] >= 2
        assert snap["wal.sync_wait_seconds"]["count"] >= commits
        assert db.wal.durable_lsn == db.wal.last_lsn()

        # Power loss drops everything since the last fsync — which must
        # not include any acknowledged commit.
        db.wal.power_off(lose_unsynced=True)
        recovered = recover_file(str(tmp_path / "wal.jsonl"))
        bodies = {row["body"] for row in recovered.query("notes").run()}
        assert bodies == set(acked)

    def test_single_threaded_commits_fsync_once_each(self, tmp_path):
        """No concurrency, no window: behaviour identical to per-commit
        fsync — each commit is its own leader with group size 1."""
        db = make_db(tmp_path)
        for i in range(5):
            db.insert("notes", {"body": f"n{i}"})
        snap = db.metrics_snapshot()
        # 5 commits + the CREATE_TABLE has no commit record; fsyncs come
        # from the 5 COMMITs only.
        assert snap["wal.fsyncs"]["value"] == 5
        assert snap["wal.group_commit_size"]["max"] == 1
        assert db.wal.durable_lsn == db.wal.last_lsn()

    def test_leader_crash_mid_group_followers_not_durable(self, tmp_path):
        """Leader dies at wal.before_fsync with a follower enqueued: the
        follower must raise CrashSignal, and neither commit recovers
        after the power loss."""
        # hit=2: the first fsync durably commits a baseline row (and the
        # CREATE_TABLE before it); the crash lands on the group's fsync.
        plan = FaultPlan.crash_once("wal.before_fsync", hit=2,
                                    power_loss=True)
        db = make_db(tmp_path, faults=FaultInjector(plan),
                     wal_group_window=2.0, wal_group_max=2)
        db.insert("notes", {"body": "baseline"})
        outcomes: dict[str, BaseException | str] = {}

        def commit(label: str) -> None:
            try:
                with db.transaction() as txn:
                    txn.insert("notes", {"body": label})
                outcomes[label] = "acked"
            except CrashSignal as exc:
                outcomes[label] = exc

        leader = threading.Thread(target=commit, args=("leader",))
        leader.start()
        # Wait until the leader is actually holding the barrier open
        # (its window is long; it fsyncs as soon as a follower joins).
        deadline = time.time() + 5.0
        while db.wal._pending_commits < 1 and time.time() < deadline:
            time.sleep(0.001)
        assert db.wal._pending_commits >= 1, "leader never reached barrier"
        follower = threading.Thread(target=commit, args=("follower",))
        follower.start()
        leader.join(timeout=10.0)
        follower.join(timeout=10.0)
        assert not leader.is_alive() and not follower.is_alive()

        assert isinstance(outcomes["leader"], CrashSignal)
        assert isinstance(outcomes["follower"], CrashSignal)
        recovered = recover_file(str(tmp_path / "wal.jsonl"))
        bodies = [row["body"] for row in recovered.query("notes").run()]
        assert bodies == ["baseline"]  # neither group member survived

    def test_crash_at_wal_after_write_rolls_back_unacked_commit(
            self, tmp_path):
        """The new crash point: record buffered, barrier never entered.
        With power loss the commit record is gone — recovery must not
        surface the transaction."""
        plan = FaultPlan.crash_once("wal.after_write", hit=2,
                                    power_loss=True)
        db = make_db(tmp_path, faults=FaultInjector(plan))
        db.insert("notes", {"body": "baseline"})
        with pytest.raises(CrashSignal):
            db.insert("notes", {"body": "lost"})
        recovered = recover_file(str(tmp_path / "wal.jsonl"))
        bodies = [row["body"] for row in recovered.query("notes").run()]
        assert bodies == ["baseline"]

    def test_commits_after_group_leader_keep_working(self, tmp_path):
        """The barrier hands leadership over cleanly: commits issued
        after a grouped round still ack and fsync."""
        db = make_db(tmp_path, wal_group_window=0.005)
        barrier = threading.Barrier(4)

        def run(worker: int) -> None:
            barrier.wait()
            db.insert("notes", {"body": f"w{worker}"})

        threads = [threading.Thread(target=run, args=(w,)) for w in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        db.insert("notes", {"body": "after"})
        assert db.wal.durable_lsn == db.wal.last_lsn()
        assert len(db.query("notes").run()) == 5

    def test_recovery_carries_commit_policy_forward(self, tmp_path):
        """A recovered engine keeps the crashed engine's group-commit
        configuration instead of silently resetting it to defaults."""
        db = make_db(tmp_path, wal_group_window=0.25, wal_group_max=7)
        db.insert("notes", {"body": "n"})
        db.wal.power_off()
        recovered = recover_file(str(tmp_path / "wal.jsonl"),
                                 wal_group_window=0.25, wal_group_max=7)
        assert recovered.wal._group_commit is True
        assert recovered.wal._group_window == 0.25
        assert recovered.wal._group_max == 7
        assert [r["body"] for r in recovered.query("notes").run()] == ["n"]
        disabled = recover_file(str(tmp_path / "wal.jsonl"),
                                wal_group_commit=False)
        assert disabled.wal._group_commit is False


# ---------------------------------------------------------------------------
# Batched edit transactions
# ---------------------------------------------------------------------------

@pytest.fixture
def duo(tmp_path):
    server = CollaborationServer(wal_path=str(tmp_path / "wal.jsonl"))
    for user in ("ana", "ben"):
        server.register_user(user)
    s1 = server.connect("ana")
    s2 = server.connect("ben")
    handle = s1.create_document("d", text="base")
    s2.open(handle.doc)
    return server, EditorClient(s1, handle.doc), EditorClient(s2, handle.doc)


class TestBatchedEditTransactions:
    def test_typing_burst_coalesces_into_one_commit(self, duo):
        server, e1, e2 = duo
        before = server.db.metrics_snapshot()
        e1.move_end()
        with e1.batch():
            for ch in "hello":
                e1.type(ch)
        after = server.db.metrics_snapshot()
        committed = (after["txn.committed"]["value"]
                     - before["txn.committed"]["value"])
        fsyncs = after["wal.fsyncs"]["value"] - before["wal.fsyncs"]["value"]
        assert committed == 1
        assert fsyncs == 1
        assert after["txn.batched_ops"]["count"] == 1
        assert after["txn.batched_ops"]["max"] >= 5
        assert e1.text() == "basehello"
        assert e2.text() == "basehello"  # one commit fan-out delivered all

    def test_batch_rolls_back_atomically_on_error(self, duo):
        server, e1, __ = duo
        e1.move_end()
        with pytest.raises(RuntimeError):
            with e1.batch():
                e1.type("xyz")
                raise RuntimeError("burst interrupted")
        assert e1.text() == "base"
        assert server.db.current_batch() is None
        # The engine is fully usable afterwards.
        e1.move_end()
        e1.type("!")
        assert e1.text() == "base!"

    def test_nested_batches_join_the_outer_one(self, tmp_path):
        db = make_db(tmp_path)
        with db.batch() as outer:
            with db.batch() as inner:
                assert inner is outer
                with db.transaction() as txn:
                    txn.insert("notes", {"body": "nested"})
            # Inner exit must not have committed.
            assert outer.is_active
        assert db.query("notes").run()[0]["body"] == "nested"
        assert db.metrics_snapshot()["txn.committed"]["value"] == 1

    def test_range_ops_amortise_locks(self, duo):
        server, e1, __ = duo
        before = server.db.metrics_snapshot()["lock.acquired"]["value"]
        e1.select(0, 4)
        e1.style_selection(None)
        after = server.db.metrics_snapshot()["lock.acquired"]["value"]
        # 4 char rows + doc row + a couple of bookkeeping rows: the
        # batched acquire keeps this bounded, and repeat acquires of the
        # same row inside the transaction are free.
        assert after - before <= 10

    def test_batched_keystrokes_trace_to_the_group_fsync(self, duo):
        server, e1, __ = duo
        tracer = server.db.obs.tracer
        buffer = TraceBuffer(max_traces=64)
        tracer.add_sink(buffer)
        try:
            e1.move_end()
            with e1.batch():
                for ch in "abc":
                    e1.type(ch)
        finally:
            tracer.remove_sink(buffer)
        # The whole burst is one trace: the batch txn span roots it; the
        # collab.op spans of each keystroke parent under it, and so does
        # the single wal.fsync with its group_size attribute.
        for trace in buffer.traces():
            names = [s.name for s in trace.spans]
            if "wal.fsync" not in names:
                continue
            txn_spans = [s for s in trace.spans if s.name == "txn"]
            ops = [s for s in trace.spans if s.name == "collab.op"]
            fsyncs = [s for s in trace.spans if s.name == "wal.fsync"]
            if len(ops) >= 3:
                break
        else:
            pytest.fail("no trace linking the batched keystrokes to a fsync")
        assert len(txn_spans) == 1
        txn_span = txn_spans[0]
        assert all(op.parent_id == txn_span.span_id for op in ops)
        assert len(fsyncs) == 1
        assert fsyncs[0].attrs["group_size"] == 1
        assert fsyncs[0].trace_id == txn_span.trace_id

    def test_session_batch_requires_connection(self, duo):
        server, e1, __ = duo
        session = e1.session
        session.disconnect()
        from repro.errors import SessionError
        with pytest.raises(SessionError):
            session.batch()
