"""Unit tests for hash and ordered indexes."""

import pytest

from repro.db.index import HashIndex, OrderedIndex
from repro.errors import UniqueViolation


class TestHashIndex:
    def test_add_probe(self):
        idx = HashIndex("i", "c")
        idx.add("a", 1)
        idx.add("a", 2)
        idx.add("b", 3)
        assert set(idx.probe_eq("a")) == {1, 2}
        assert set(idx.probe_eq("b")) == {3}
        assert set(idx.probe_eq("zzz")) == set()

    def test_remove(self):
        idx = HashIndex("i", "c")
        idx.add("a", 1)
        idx.add("a", 2)
        idx.remove("a", 1)
        assert set(idx.probe_eq("a")) == {2}
        idx.remove("a", 2)
        assert set(idx.probe_eq("a")) == set()

    def test_remove_absent_is_noop(self):
        idx = HashIndex("i", "c")
        idx.remove("a", 1)  # must not raise

    def test_none_keys_ignored(self):
        idx = HashIndex("i", "c")
        idx.add(None, 1)
        assert len(idx) == 0
        assert list(idx.probe_eq(None)) == []

    def test_unique_violation(self):
        idx = HashIndex("i", "c", unique=True)
        idx.add("a", 1)
        with pytest.raises(UniqueViolation):
            idx.add("a", 2)

    def test_unique_allows_reuse_after_remove(self):
        idx = HashIndex("i", "c", unique=True)
        idx.add("a", 1)
        idx.remove("a", 1)
        idx.add("a", 2)  # ok
        assert set(idx.probe_eq("a")) == {2}

    def test_probe_in_dedupes(self):
        idx = HashIndex("i", "c")
        idx.add("a", 1)
        idx.add("b", 1)
        assert list(idx.probe_in(["a", "b"])) == [1]

    def test_len_counts_entries(self):
        idx = HashIndex("i", "c")
        idx.add("a", 1)
        idx.add("b", 2)
        assert len(idx) == 2

    def test_len_stable_on_duplicate_add(self):
        # Regression: re-adding an existing (key, rowid) pair used to
        # bump _size anyway, so len() drifted above the real entry count.
        idx = HashIndex("i", "c")
        idx.add("a", 1)
        idx.add("a", 1)
        assert len(idx) == 1
        assert set(idx.probe_eq("a")) == {1}
        idx.remove("a", 1)
        assert len(idx) == 0

    def test_len_stable_on_noop_remove(self):
        # Regression: removing a rowid absent from an existing bucket
        # used to decrement _size anyway, driving len() negative.
        idx = HashIndex("i", "c")
        idx.add("a", 1)
        idx.remove("a", 999)   # bucket exists, rowid does not
        assert len(idx) == 1
        idx.remove("b", 1)     # bucket does not exist
        assert len(idx) == 1
        idx.remove("a", 1)
        idx.remove("a", 1)     # bucket already gone
        assert len(idx) == 0


class TestOrderedIndex:
    def _populated(self) -> OrderedIndex:
        idx = OrderedIndex("i", "c")
        for key, rowid in [(5, 1), (3, 2), (8, 3), (3, 4), (10, 5)]:
            idx.add(key, rowid)
        return idx

    def test_probe_eq(self):
        idx = self._populated()
        assert set(idx.probe_eq(3)) == {2, 4}
        assert set(idx.probe_eq(99)) == set()

    def test_probe_range_inclusive(self):
        idx = self._populated()
        assert set(idx.probe_range(3, 8)) == {1, 2, 3, 4}

    def test_probe_range_exclusive(self):
        idx = self._populated()
        assert set(idx.probe_range(3, 8, low_inclusive=False,
                                   high_inclusive=False)) == {1}

    def test_probe_range_open_bounds(self):
        idx = self._populated()
        assert set(idx.probe_range(low=8)) == {3, 5}
        assert set(idx.probe_range(high=5)) == {1, 2, 4}
        assert set(idx.probe_range()) == {1, 2, 3, 4, 5}

    def test_iter_ordered(self):
        idx = self._populated()
        keys = [k for k, __ in idx.iter_ordered()]
        assert keys == sorted(keys)
        keys_desc = [k for k, __ in idx.iter_ordered(reverse=True)]
        assert keys_desc == sorted(keys, reverse=True)

    def test_min_max(self):
        idx = self._populated()
        assert idx.min_key() == 3
        assert idx.max_key() == 10
        empty = OrderedIndex("e", "c")
        assert empty.min_key() is None
        assert empty.max_key() is None

    def test_remove(self):
        idx = self._populated()
        idx.remove(3, 2)
        assert set(idx.probe_eq(3)) == {4}
        assert len(idx) == 4

    def test_unique_violation(self):
        idx = OrderedIndex("i", "c", unique=True)
        idx.add(1, 10)
        with pytest.raises(UniqueViolation):
            idx.add(1, 11)

    def test_none_keys_ignored(self):
        idx = OrderedIndex("i", "c")
        idx.add(None, 1)
        assert len(idx) == 0

    def test_supports_range(self):
        assert OrderedIndex("i", "c").supports_range()
        assert not HashIndex("i", "c").supports_range()
