"""Trace export tests: buffer, Chrome trace golden, fault interplay.

The causal-tracing contract this file pins down:

* every keystroke in the two-editor duet yields ONE trace linking the
  editor op → txn commit → WAL fsync → dispatch → remote deliver →
  remote apply, with correct parent edges;
* the Chrome trace-event export of the fixed scenario is byte-stable
  (golden file, timestamps scrubbed) and structurally valid;
* held/reordered delivery (seeded PR-1 fault plans) bends the timeline
  but never the causality: the same chain holds, and every started span
  finishes exactly once.

Regenerate the golden after an intentional format change::

    PYTHONPATH=src python tests/test_trace_export.py --regen
"""

from __future__ import annotations

import copy
import json
import os

import pytest

from repro.faults import FaultInjector, FaultPlan
from repro.obs import (
    TraceBuffer,
    Tracer,
    chrome_trace,
    render_top,
    render_trace,
    span_to_dict,
    spans_to_jsonl,
    validate_chrome_trace,
)
from repro.workload import run_traced_duet

GOLDEN = os.path.join(os.path.dirname(os.path.abspath(__file__)), "data",
                      "trace_chrome_golden.json")

#: The causal chain every keystroke trace must carry, child → parent.
CHAIN = ("collab.apply", "collab.deliver", "collab.dispatch", "txn",
         "collab.op")


def duet(tmp_path, **kwargs):
    """The fixed scenario behind the golden file (WAL on, so fsync traces)."""
    return run_traced_duet(wal_path=str(tmp_path / "duet.wal"), **kwargs)


def scrub(payload: dict) -> dict:
    """Zero the wall-clock fields so the payload is run-independent."""
    payload = copy.deepcopy(payload)
    for event in payload["traceEvents"]:
        if event["ph"] == "X":
            event["ts"] = 0.0
            event["dur"] = 0.0
    return payload


def keystroke_traces(buffer: TraceBuffer) -> list:
    return [t for t in buffer.traces()
            if t.root is not None and t.root.name == "collab.op"]


def assert_causal_chain(trace) -> None:
    """Walk child → parent along CHAIN inside one trace."""
    by_id = {s.span_id: s for s in trace.spans}
    applies = [s for s in trace.spans if s.name == "collab.apply"]
    assert applies, f"trace {trace.trace_id} has no remote apply"
    for apply_span in applies:
        span = apply_span
        for expected_parent in CHAIN[1:]:
            assert span.parent_id is not None, \
                f"{span.name} lost its parent in trace {trace.trace_id}"
            span = by_id[span.parent_id]
            assert span.name == expected_parent
        assert span.parent_id is None  # collab.op roots the trace
        assert len({s.trace_id for s in trace.spans}) == 1


# ---------------------------------------------------------------------------
# The duet scenario end to end
# ---------------------------------------------------------------------------

class TestTracedDuet:
    def test_one_trace_per_keystroke_with_full_chain(self, tmp_path):
        server, buffer = duet(tmp_path, text="causal trace")
        traces = keystroke_traces(buffer)
        assert len(traces) == len("causal trace")
        for trace in traces:
            assert_causal_chain(trace)
            names = {s.name for s in trace.spans}
            assert "wal.fsync" in names

    def test_every_span_finished_exactly_once(self, tmp_path):
        server, buffer = duet(tmp_path)
        registry = server.db.obs.registry
        started = registry.get("trace.spans_started").value
        finished = sum(len(t) for t in buffer.traces())
        assert started == finished > 0
        assert server.db.obs.tracer.open_spans() == []
        assert registry.get("trace.active_spans").value == 0

    def test_replication_metric_observed_per_delivery(self, tmp_path):
        server, buffer = duet(tmp_path, text="abcd")
        snapshot = server.db.metrics_snapshot()
        deliveries = sum(
            1 for t in buffer.traces() for s in t.spans
            if s.name == "collab.deliver")
        assert snapshot["collab.replication_seconds"]["count"] == deliveries
        assert deliveries >= len("abcd")


# ---------------------------------------------------------------------------
# Export formats
# ---------------------------------------------------------------------------

class TestChromeExport:
    def test_matches_golden_file(self, tmp_path):
        __, buffer = duet(tmp_path, text="causal trace")
        payload = scrub(chrome_trace(buffer.traces()))
        with open(GOLDEN, "r", encoding="utf-8") as handle:
            assert payload == json.load(handle)

    def test_payload_validates(self, tmp_path):
        __, buffer = duet(tmp_path)
        assert validate_chrome_trace(chrome_trace(buffer.traces())) == []

    def test_validator_catches_broken_causality(self):
        payload = {"traceEvents": [{
            "ph": "X", "name": "x", "pid": 1, "tid": 1, "ts": 0.0,
            "dur": 1.0, "args": {"trace": 1, "span": 2, "parent": 99},
        }]}
        errors = validate_chrome_trace(payload)
        assert any("broken causal link" in e for e in errors)

    def test_validator_catches_malformed_events(self):
        assert validate_chrome_trace([]) != []
        assert validate_chrome_trace({"traceEvents": [{"ph": "Q"}]}) != []
        assert validate_chrome_trace(
            {"traceEvents": [{"ph": "X", "name": "x", "pid": 1, "tid": 1,
                              "ts": -1.0, "dur": 0.0,
                              "args": {"span": 1, "trace": 1,
                                       "parent": None}}]}) != []


class TestJsonlExport:
    def test_round_trips_span_fields(self, tmp_path):
        __, buffer = duet(tmp_path, text="ab")
        spans = [s for t in buffer.traces() for s in t.spans]
        lines = spans_to_jsonl(spans).splitlines()
        assert len(lines) == len(spans)
        for span, line in zip(spans, lines):
            loaded = json.loads(line)
            assert loaded == json.loads(json.dumps(span_to_dict(span)))
            assert loaded["trace"] == span.trace_id
            assert loaded["span"] == span.span_id
            assert loaded["parent"] == span.parent_id
            assert loaded["duration"] == pytest.approx(span.duration)


class TestRendering:
    def test_tree_render_shows_chain_and_depth(self, tmp_path):
        __, buffer = duet(tmp_path, text="a")
        trace = keystroke_traces(buffer)[-1]
        rendered = render_trace(trace)
        lines = rendered.splitlines()
        assert "end-to-end" in lines[0]
        order = [name for name in
                 ("collab.op", "txn", "wal.fsync", "collab.dispatch",
                  "collab.deliver", "collab.apply")
                 if any(name in line for line in lines)]
        assert order == ["collab.op", "txn", "wal.fsync", "collab.dispatch",
                         "collab.deliver", "collab.apply"]
        # Depth grows along the delivery leg.
        deliver = next(line for line in lines if "collab.deliver" in line)
        apply_ = next(line for line in lines if "collab.apply" in line)
        assert len(apply_) - len(apply_.lstrip()) > \
            len(deliver) - len(deliver.lstrip())

    def test_top_render_lists_hot_metrics_and_slow_traces(self, tmp_path):
        server, buffer = duet(tmp_path, text="abc")
        out = render_top(server.db.metrics_snapshot(), buffer.traces())
        assert "hot paths" in out
        assert "collab.replication_seconds" in out
        assert "slowest recent traces" in out
        assert "collab.op" in out


# ---------------------------------------------------------------------------
# Trace buffer behaviour
# ---------------------------------------------------------------------------

class TestTraceBuffer:
    def test_evicts_whole_traces_beyond_bound(self):
        tracer = Tracer()
        buffer = TraceBuffer(max_traces=3)
        tracer.add_sink(buffer)
        for __ in range(10):
            with tracer.span("op"):
                pass
        assert len(buffer) == 3
        assert buffer.evicted == 7
        kept = [t.trace_id for t in buffer.traces()]
        assert kept == [8, 9, 10]  # the newest three, oldest first

    def test_slow_op_log_thresholds_on_trace_extent(self):
        import time

        tracer = Tracer()
        buffer = TraceBuffer(slow_threshold=0.02)
        tracer.add_sink(buffer)
        with tracer.span("fast"):
            pass
        with tracer.span("slow"):
            time.sleep(0.03)
        slow = buffer.slow_ops()
        assert [t.root.name for t in slow] == ["slow"]

    def test_slow_counter_increments_once_per_trace(self):
        import time

        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        tracer = Tracer()
        buffer = TraceBuffer(slow_threshold=0.01, registry=registry)
        tracer.add_sink(buffer)
        with tracer.span("outer"):
            with tracer.span("inner-1"):
                time.sleep(0.015)
            with tracer.span("inner-2"):
                pass
        assert registry.get("trace.slow_ops").value == 1
        # The re-captured tree holds the whole trace, not the first hit.
        assert len(buffer.slow_ops()[0]) == 3

    def test_slowest_ranks_by_extent(self, tmp_path):
        __, buffer = duet(tmp_path, text="abc")
        slowest = buffer.slowest(3)
        durations = [t.duration for t in slowest]
        assert durations == sorted(durations, reverse=True)


# ---------------------------------------------------------------------------
# Fault interplay: held / reordered delivery must not break causality
# ---------------------------------------------------------------------------

class TestFaultInterplay:
    @pytest.mark.parametrize("seed", [3, 17, 99, 1311])
    def test_causal_links_survive_held_and_reordered_delivery(
            self, tmp_path, seed):
        faults = FaultInjector(FaultPlan.delivery_only(seed))
        server, buffer = duet(tmp_path, text="causal trace", faults=faults)
        traces = keystroke_traces(buffer)
        assert len(traces) == len("causal trace")
        for trace in traces:
            assert_causal_chain(trace)

    @pytest.mark.parametrize("seed", [3, 17, 99, 1311])
    def test_every_span_finished_exactly_once_under_faults(
            self, tmp_path, seed):
        faults = FaultInjector(FaultPlan.delivery_only(seed))
        server, buffer = duet(tmp_path, faults=faults)
        registry = server.db.obs.registry
        started = registry.get("trace.spans_started").value
        finished = sum(len(t) for t in buffer.traces())
        assert started == finished > 0
        assert server.db.obs.tracer.open_spans() == []
        assert registry.get("trace.active_spans").value == 0

    def test_held_deliveries_marked_and_measured(self, tmp_path):
        # p_hold is seeded per plan; this seed is known to hold some.
        faults = FaultInjector(FaultPlan.delivery_only(1311))
        server, buffer = duet(tmp_path, faults=faults)
        held_spans = [
            s for t in buffer.traces() for s in t.spans
            if s.name == "collab.deliver" and s.attrs.get("held")]
        snapshot = server.db.metrics_snapshot()
        assert snapshot["collab.held"]["value"] > 0
        assert len(held_spans) == snapshot["collab.held"]["value"]
        assert snapshot["collab.held_seconds"]["count"] == len(held_spans)
        # Replication latency counts every delivery, held or not.
        assert snapshot["collab.replication_seconds"]["count"] == \
            snapshot["collab.deliveries"]["value"]


def _regen() -> None:  # pragma: no cover - maintenance helper
    import tempfile
    from pathlib import Path

    with tempfile.TemporaryDirectory() as tmp:
        __, buffer = duet(Path(tmp), text="causal trace")
    payload = scrub(chrome_trace(buffer.traces()))
    with open(GOLDEN, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=1, sort_keys=True)
        handle.write("\n")
    print(f"wrote {GOLDEN}")


if __name__ == "__main__":  # pragma: no cover - maintenance helper
    import sys
    if "--regen" in sys.argv:
        _regen()
