"""TelemetryStore: clock-driven rings and windowed aggregates.

Everything runs on a :class:`~repro.clock.SimulatedClock` with explicit
sample times, so the windows are exact: a counter incremented 10/s for
two minutes must show a 10s-window rate of 10.0, and a histogram whose
latency steps up at t=60 must show the step in the 10s window while the
5m window still blends both regimes.
"""

from __future__ import annotations

import pytest

from repro.clock import SimulatedClock
from repro.obs import (
    DEFAULT_WINDOWS,
    TELEMETRY_SCHEMA,
    MetricsRegistry,
    TelemetryStore,
    window_label,
)

START = 1_000_000.0


def make_store(capacity: int = 512) -> tuple[MetricsRegistry,
                                             TelemetryStore]:
    registry = MetricsRegistry()
    clock = SimulatedClock(start=START, tick=0.0)
    return registry, TelemetryStore(registry, clock, interval=1.0,
                                    capacity=capacity)


class TestSampling:
    def test_sample_records_one_point_per_metric(self):
        registry, store = make_store()
        registry.counter("c").inc()
        registry.gauge("g").set(5)
        store.sample(now=START)
        assert store.points("c") == [(START, 1)]
        assert store.points("g") == [(START, 5)]
        assert store.kind("c") == "counter"

    def test_rings_are_bounded(self):
        registry, store = make_store(capacity=8)
        counter = registry.counter("c")
        for i in range(50):
            counter.inc()
            store.sample(now=START + i)
        assert len(store.points("c")) == 8

    def test_maybe_sample_respects_the_interval(self):
        registry = MetricsRegistry()
        clock = SimulatedClock(start=START, tick=0.0)
        store = TelemetryStore(registry, clock, interval=10.0)
        registry.counter("c").inc()
        assert store.maybe_sample() is True
        assert store.maybe_sample() is False      # no time elapsed
        clock.advance(10.0)
        assert store.maybe_sample() is True

    def test_sampling_is_counted(self):
        registry, store = make_store()
        registry.counter("c").inc()
        store.sample(now=START)
        store.sample(now=START + 1)
        assert registry.snapshot()["obs.samples"]["value"] == 2

    def test_capacity_below_two_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            TelemetryStore(registry, capacity=1)


class TestWindows:
    def test_counter_rate_is_exact_on_a_steady_stream(self):
        registry, store = make_store()
        counter = registry.counter("c")
        for second in range(121):
            store.sample(now=START + second)
            counter.inc(10)
        for span in DEFAULT_WINDOWS:
            agg = store.window("c", span, now=START + 120)
            assert agg["kind"] == "counter"
            assert agg["rate"] == pytest.approx(10.0)

    def test_gauge_window_aggregates_in_window_points(self):
        registry, store = make_store()
        gauge = registry.gauge("g")
        for second, value in enumerate((1, 2, 3, 10)):
            gauge.set(value)
            store.sample(now=START + second)
        agg = store.window("g", 2.0, now=START + 3)
        assert agg["last"] == 10
        assert agg["min"] == 2 and agg["max"] == 10

    def test_histogram_step_shows_in_fast_window_only(self):
        registry, store = make_store()
        hist = registry.histogram("lat")
        for second in range(121):
            latency = 0.128 if second >= 111 else 0.001
            for __ in range(10):
                hist.observe(latency)
            store.sample(now=START + second)
        fast = store.window("lat", 10.0, now=START + 120)
        slow = store.window("lat", 300.0, now=START + 120)
        # The last 10 seconds are all slow: fast p99 sees the step.
        assert fast["p99"] > 0.064
        # The 5m window blends 110 fast seconds with 10 slow ones, so
        # its p50 stays down at the old regime.
        assert slow["p50"] < 0.004
        assert fast["rate"] == pytest.approx(10.0)

    def test_short_history_falls_back_to_oldest_point(self):
        registry, store = make_store()
        counter = registry.counter("c")
        store.sample(now=START)
        counter.inc(30)
        store.sample(now=START + 3)
        agg = store.window("c", 300.0, now=START + 3)
        assert agg["delta"] == 30
        assert agg["span"] == pytest.approx(3.0)

    def test_unknown_metric_windows_are_none(self):
        __, store = make_store()
        assert store.window("nope", 10.0) is None
        assert store.histogram_delta("nope", 10.0) is None

    def test_histogram_delta_buckets_are_positive_deltas(self):
        registry, store = make_store()
        hist = registry.histogram("lat", buckets=(0.01, 0.1))
        hist.observe(0.005)
        store.sample(now=START)
        hist.observe(0.05)
        hist.observe(0.05)
        store.sample(now=START + 5)
        delta = store.histogram_delta("lat", 10.0, now=START + 5)
        assert delta["count"] == 2
        assert delta["buckets"] == {0.1: 2}


class TestSnapshot:
    def test_snapshot_shape_and_trimming(self):
        registry, store = make_store()
        counter = registry.counter("c")
        hist = registry.histogram("lat")
        for second in range(40):
            counter.inc()
            hist.observe(0.001)
            store.sample(now=START + second)
        snap = store.snapshot(max_points=4)
        assert snap["schema"] == TELEMETRY_SCHEMA
        assert snap["at"] == START + 39
        assert len(snap["series"]["c"]["points"]) == 4
        # Histogram points are trimmed to (time, count, sum) on the wire.
        assert all(len(pt) == 3 for pt in snap["series"]["lat"]["points"])
        assert "10s" in snap["windows"]["c"]

    def test_snapshot_name_filter(self):
        registry, store = make_store()
        registry.counter("a").inc()
        registry.counter("b").inc()
        store.sample(now=START)
        snap = store.snapshot(names=["a"])
        assert set(snap["series"]) == {"a"}

    def test_snapshot_is_json_clean(self):
        import json
        registry, store = make_store()
        registry.histogram("lat").observe(0.002)
        registry.counter("c", labels={"verb": "x"}).inc()
        store.sample(now=START)
        store.sample(now=START + 1)
        snap = store.snapshot()
        assert json.loads(json.dumps(snap)) == snap


class TestWindowLabel:
    def test_labels(self):
        assert window_label(10.0) == "10s"
        assert window_label(60.0) == "1m"
        assert window_label(300.0) == "5m"
        assert window_label(2.5) == "2.5s"
