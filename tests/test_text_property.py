"""Property-based tests: the document against a plain-string model.

The central invariant of the text-native representation: any sequence of
position-addressed inserts/deletes/undeletes produces exactly the text a
plain Python string would, the chain stays doubly-linked and acyclic, and
every independently opened handle converges to the same text.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, initialize, invariant, rule

from repro.db import Database
from repro.text import DocumentStore

chars = st.text(
    alphabet=st.characters(min_codepoint=32, max_codepoint=126),
    min_size=1, max_size=8,
)


@settings(max_examples=50, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 100), chars), max_size=20))
def test_inserts_match_string_model(ops):
    db = Database("p")
    store = DocumentStore(db, log_reads=False, log_writes=False)
    handle = store.create("d", "u")
    model = ""
    for raw_pos, text in ops:
        pos = raw_pos % (len(model) + 1)
        handle.insert_text(pos, text, "u")
        model = model[:pos] + text + model[pos:]
    assert handle.text() == model
    assert handle.check_integrity() == []


@settings(max_examples=50, deadline=None)
@given(
    chars,
    st.lists(st.tuples(st.integers(0, 100), st.integers(1, 5)), max_size=10),
)
def test_deletes_match_string_model(initial, deletions):
    db = Database("p")
    store = DocumentStore(db, log_reads=False, log_writes=False)
    handle = store.create("d", "u", text=initial)
    model = initial
    for raw_pos, raw_count in deletions:
        if not model:
            break
        pos = raw_pos % len(model)
        count = min(raw_count, len(model) - pos)
        handle.delete_range(pos, count, "u")
        model = model[:pos] + model[pos + count:]
    assert handle.text() == model
    assert handle.check_integrity() == []


class EditorModel(RuleBasedStateMachine):
    """Random edit programme with two open handles and undelete."""

    @initialize()
    def setup(self):
        self.db = Database("p")
        self.store = DocumentStore(self.db, log_reads=False,
                                   log_writes=False)
        self.h1 = self.store.create("d", "u1")
        self.h2 = self.store.open(self.h1.doc, "u2")
        self.model = ""
        self.deleted_batches: list[tuple[str, list]] = []

    def _handle(self, who: int):
        return self.h1 if who == 0 else self.h2

    @rule(who=st.integers(0, 1), raw_pos=st.integers(0, 200), text=chars)
    def insert(self, who, raw_pos, text):
        pos = raw_pos % (len(self.model) + 1)
        self._handle(who).insert_text(pos, text, f"u{who}")
        self.model = self.model[:pos] + text + self.model[pos:]

    @rule(who=st.integers(0, 1), raw_pos=st.integers(0, 200),
          raw_count=st.integers(1, 6))
    def delete(self, who, raw_pos, raw_count):
        if not self.model:
            return
        pos = raw_pos % len(self.model)
        count = min(raw_count, len(self.model) - pos)
        removed_text = self.model[pos:pos + count]
        oids = self._handle(who).delete_range(pos, count, f"u{who}")
        self.model = self.model[:pos] + self.model[pos + count:]
        self.deleted_batches.append((removed_text, oids))

    @rule(who=st.integers(0, 1))
    def undelete_last(self, who):
        if not self.deleted_batches:
            return
        __, oids = self.deleted_batches.pop()
        handle = self._handle(who)
        handle.undelete_chars(oids, f"u{who}")
        # Recompute the model from the authoritative handle: undeleted
        # characters reappear at their chain positions.
        self.model = handle.text()

    @invariant()
    def handles_converge(self):
        assert self.h1.text() == self.model
        assert self.h2.text() == self.model

    @invariant()
    def chain_is_healthy(self):
        assert self.h1.check_integrity() == []

    @invariant()
    def size_metadata_consistent(self):
        meta = self.store.meta(self.h1.doc)
        assert meta["size"] == len(self.model)


TestEditorModel = EditorModel.TestCase
TestEditorModel.settings = settings(
    max_examples=20, stateful_step_count=25, deadline=None
)
