"""Property and unit tests for the metrics layer (``repro.obs``).

The load-bearing property: a histogram's quantile *estimate* always lies
inside the bucket containing the *true* quantile, so its error is
bounded by that bucket's width.  Stated with hypothesis over arbitrary
value streams and quantiles.  Counters and gauges must be exact — under
seeded deterministic interleavings and under real threads.
"""

from __future__ import annotations

import math
import threading
from bisect import bisect_left

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.faults import DeterministicScheduler
from repro.obs import (
    NULL_REGISTRY,
    Histogram,
    MetricsRegistry,
    Observability,
    collecting,
    compact_snapshot,
    merge_snapshots,
)

#: Deliberately coarse bounds so streams exercise interior buckets, the
#: first bucket (below bounds[0]) and the overflow bucket (> bounds[-1]).
BOUNDS = (0.5, 1.0, 2.0, 4.0, 8.0)


def true_quantile(values: list[float], q: float) -> float:
    """Rank-based quantile over the raw stream (the histogram's target)."""
    ordered = sorted(values)
    rank = max(1, math.ceil(q * len(ordered)))
    return ordered[rank - 1]


# ---------------------------------------------------------------------------
# The quantile error-bound property
# ---------------------------------------------------------------------------

class TestQuantileErrorBound:
    @given(
        values=st.lists(
            st.floats(min_value=0.0, max_value=16.0,
                      allow_nan=False, allow_infinity=False),
            min_size=1, max_size=200),
        q=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_estimate_shares_the_true_quantiles_bucket(self, values, q):
        hist = Histogram("h", buckets=BOUNDS)
        for v in values:
            hist.observe(v)
        estimate = hist.quantile(q)
        truth = true_quantile(values, q)
        # The bucket the true quantile falls in: (lo, hi], clamped to the
        # observed range — exactly the interval the estimate interpolates
        # within.  Sharing it bounds the error by the bucket width.
        i = bisect_left(BOUNDS, truth)
        lo = BOUNDS[i - 1] if i > 0 else min(values)
        hi = BOUNDS[i] if i < len(BOUNDS) else max(values)
        assert max(lo, min(values)) <= estimate <= min(hi, max(values))

    @given(
        values=st.lists(
            st.floats(min_value=0.0, max_value=16.0,
                      allow_nan=False, allow_infinity=False),
            min_size=1, max_size=100),
    )
    def test_count_sum_min_max_are_exact(self, values):
        hist = Histogram("h", buckets=BOUNDS)
        for v in values:
            hist.observe(v)
        assert hist.count == len(values)
        assert hist.sum == pytest.approx(math.fsum(values))
        assert hist.min == min(values)
        assert hist.max == max(values)

    @given(
        values=st.lists(
            st.floats(min_value=0.0, max_value=16.0,
                      allow_nan=False, allow_infinity=False),
            min_size=1, max_size=100),
    )
    def test_quantiles_are_monotone_and_clamped(self, values):
        hist = Histogram("h", buckets=BOUNDS)
        for v in values:
            hist.observe(v)
        qs = [hist.quantile(q / 10) for q in range(11)]
        assert all(a <= b for a, b in zip(qs, qs[1:]))
        assert min(values) <= qs[0] and qs[-1] <= max(values)

    def test_empty_histogram_has_no_quantiles(self):
        hist = Histogram("h", buckets=BOUNDS)
        assert hist.quantile(0.5) is None
        snap = hist.snapshot()
        assert snap["count"] == 0 and snap["p50"] is None

    def test_quantile_outside_unit_interval_rejected(self):
        hist = Histogram("h", buckets=BOUNDS)
        hist.observe(1.0)
        with pytest.raises(ValueError):
            hist.quantile(1.5)

    def test_bucket_bounds_must_increase(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=(1.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("h", buckets=())


# ---------------------------------------------------------------------------
# Exactness under interleaving and threads
# ---------------------------------------------------------------------------

class TestCounterExactness:
    @pytest.mark.parametrize("seed", range(5))
    def test_counters_exact_under_seeded_interleavings(self, seed):
        registry = MetricsRegistry()
        total = registry.counter("total")
        sched = DeterministicScheduler(seed)
        per_actor = {}
        for name in ("ana", "ben", "cleo"):
            own = registry.counter(f"ops.{name}")
            per_actor[name] = own

            def step(own=own):
                own.inc()
                total.inc()

            sched.add_actor(name, step, weight=1 + len(name) % 3)
        trace = sched.run(200)
        assert total.value == 200
        for name, counter in per_actor.items():
            assert counter.value == trace.count(name)

    @pytest.mark.parametrize("seed", range(5))
    def test_gauge_tracks_interleaved_inc_dec(self, seed):
        registry = MetricsRegistry()
        depth = registry.gauge("depth")
        sched = DeterministicScheduler(seed)
        shadow = {"value": 0}

        def up():
            depth.inc()
            shadow["value"] += 1

        def down():
            depth.dec()
            shadow["value"] -= 1

        sched.add_actor("up", up, weight=2)
        sched.add_actor("down", down)
        sched.run(300)
        assert depth.value == shadow["value"]

    def test_counter_exact_under_threads(self):
        counter = MetricsRegistry().counter("n")
        threads = [
            threading.Thread(
                target=lambda: [counter.inc() for __ in range(2000)])
            for __ in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == 8 * 2000

    def test_histogram_count_exact_under_threads(self):
        hist = Histogram("h", buckets=BOUNDS)
        threads = [
            threading.Thread(
                target=lambda: [hist.observe(1.0) for __ in range(1000)])
            for __ in range(6)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert hist.count == 6000


# ---------------------------------------------------------------------------
# Registry, null registry, merge, compact
# ---------------------------------------------------------------------------

class TestRegistry:
    def test_get_or_create_returns_same_metric(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")

    def test_kind_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("a")
        with pytest.raises(TypeError):
            registry.gauge("a")

    def test_snapshot_round_trips_through_json_types(self):
        import json
        registry = MetricsRegistry()
        registry.counter("c").inc(3)
        registry.histogram("h", buckets=BOUNDS).observe(1.5)
        snap = registry.snapshot()
        assert json.loads(json.dumps(snap)) == snap

    def test_reset_zeroes_everything(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(5)
        registry.histogram("h", buckets=BOUNDS).observe(1.0)
        registry.reset()
        snap = registry.snapshot()
        assert snap["c"]["value"] == 0 and snap["h"]["count"] == 0

    def test_null_registry_records_nothing(self):
        NULL_REGISTRY.counter("x").inc()
        NULL_REGISTRY.gauge("x").set(5)
        NULL_REGISTRY.histogram("x").observe(1.0)
        assert NULL_REGISTRY.snapshot() == {}
        assert not NULL_REGISTRY.enabled

    def test_disabled_observability_uses_null_registry(self):
        obs = Observability(enabled=False)
        assert obs.registry is NULL_REGISTRY


class TestMergeAndCompact:
    def test_counters_and_gauges_add(self):
        r1, r2 = MetricsRegistry(), MetricsRegistry()
        r1.counter("c").inc(2)
        r2.counter("c").inc(3)
        r1.gauge("g").set(1)
        r2.gauge("g").set(4)
        merged = merge_snapshots([r1.snapshot(), r2.snapshot()])
        assert merged["c"]["value"] == 5
        assert merged["g"]["value"] == 5

    def test_histograms_merge_buckets_and_recompute_quantiles(self):
        r1, r2 = MetricsRegistry(), MetricsRegistry()
        h1 = r1.histogram("h", buckets=BOUNDS)
        h2 = r2.histogram("h", buckets=BOUNDS)
        stream1, stream2 = [0.3, 0.7, 1.5], [3.0, 6.0, 12.0]
        for v in stream1:
            h1.observe(v)
        for v in stream2:
            h2.observe(v)
        merged = merge_snapshots([r1.snapshot(), r2.snapshot()])["h"]
        combined = stream1 + stream2
        assert merged["count"] == len(combined)
        assert merged["min"] == min(combined)
        assert merged["max"] == max(combined)
        assert merged["overflow"] == 1          # the 12.0
        # The recomputed p50 obeys the same bucket error bound.
        truth = true_quantile(combined, 0.5)
        i = bisect_left(BOUNDS, truth)
        lo = BOUNDS[i - 1] if i > 0 else min(combined)
        hi = BOUNDS[i] if i < len(BOUNDS) else max(combined)
        assert lo <= merged["p50"] <= hi

    def test_merge_overflow_only_histogram(self):
        # Snapshots carry sparse buckets: a histogram whose only
        # observation overflowed the largest bound arrives with no
        # finite buckets at all, and the recomputed quantiles must fall
        # back to the observed extremes instead of crashing.
        r1 = MetricsRegistry()
        h1 = r1.histogram("h", buckets=BOUNDS)
        h1.observe(BOUNDS[-1] * 3)
        merged = merge_snapshots([r1.snapshot()])["h"]
        assert merged["overflow"] == 1
        assert merged["p50"] == merged["p99"] == BOUNDS[-1] * 3

    def test_merge_rejects_kind_conflicts(self):
        r1, r2 = MetricsRegistry(), MetricsRegistry()
        r1.counter("x").inc()
        r2.gauge("x").set(1)
        with pytest.raises(ValueError):
            merge_snapshots([r1.snapshot(), r2.snapshot()])

    def test_compact_drops_bucket_arrays(self):
        registry = MetricsRegistry()
        registry.histogram("h", buckets=BOUNDS).observe(1.0)
        registry.counter("c").inc()
        compact = compact_snapshot(registry.snapshot())
        assert "buckets" not in compact["h"]
        assert compact["h"]["count"] == 1
        assert compact["c"] == {"type": "counter", "value": 1}

    def test_collecting_captures_enabled_engines_only(self):
        with collecting() as seen:
            enabled = Observability()
            Observability(enabled=False)
        assert seen == [enabled]


# ---------------------------------------------------------------------------
# Quantile edge pins (q=0.0, q=1.0, overflow-only streams)
# ---------------------------------------------------------------------------

class TestQuantileEdgePins:
    """The audited edge contract, pinned so it cannot regress silently.

    * ``q=1.0`` returns *exactly* the observed maximum — including when
      the maximum lives in the overflow bucket;
    * ``q=0.0`` stays inside the first non-empty bucket clamped to the
      observed minimum (it interpolates, it does not collapse to max);
    * a stream living entirely in the overflow bucket interpolates
      between ``max(bounds[-1], min)`` and the observed max instead of
      answering the maximum for every q.
    """

    def test_q1_is_exactly_the_observed_max(self):
        hist = Histogram("h", buckets=BOUNDS)
        for v in (0.7, 1.5, 3.0):
            hist.observe(v)
        assert hist.quantile(1.0) == 3.0

    def test_q1_is_exact_even_from_the_overflow_bucket(self):
        hist = Histogram("h", buckets=BOUNDS)
        for v in (0.7, 1.5, 16.0):
            hist.observe(v)
        assert hist.quantile(1.0) == 16.0

    def test_q0_stays_in_the_first_bucket_above_the_min(self):
        hist = Histogram("h", buckets=BOUNDS)
        for v in (0.7, 1.5, 3.0, 6.0):
            hist.observe(v)
        estimate = hist.quantile(0.0)
        # 0.7 falls in the (0.5, 1.0] bucket: the q=0 estimate must not
        # leave it, and must never dip below the observed minimum.
        assert 0.7 <= estimate <= 1.0

    def test_overflow_only_stream_does_not_collapse_to_max(self):
        hist = Histogram("h", buckets=BOUNDS)
        values = (9.0, 10.0, 11.0, 16.0)     # all > bounds[-1] == 8.0
        for v in values:
            hist.observe(v)
        estimates = [hist.quantile(q / 4) for q in range(5)]
        assert all(min(values) <= e <= max(values) for e in estimates)
        assert all(a <= b for a, b in zip(estimates, estimates[1:]))
        assert estimates[-1] == 16.0         # q=1.0 exact
        assert estimates[0] < 16.0           # q=0.0 interpolates down

    def test_single_overflow_observation_is_exact_everywhere(self):
        hist = Histogram("h", buckets=BOUNDS)
        hist.observe(11.0)
        for q in (0.0, 0.5, 1.0):
            assert hist.quantile(q) == 11.0
