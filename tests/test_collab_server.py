"""Tests for the collaboration server, sessions and propagation."""

import pytest

from repro.collab import CollaborationServer
from repro.errors import (
    AccessDenied,
    ClipboardError,
    InvalidPositionError,
    SessionError,
    UnknownPrincipalError,
)
from repro.text import dbschema as S


@pytest.fixture
def server():
    server = CollaborationServer()
    for user in ("ana", "ben", "cleo"):
        server.register_user(user)
    return server


@pytest.fixture
def doc(server):
    session = server.connect("ana")
    handle = session.create_document("shared", text="hello world")
    session.disconnect()
    return handle.doc


class TestConnection:
    def test_connect_requires_registered_user(self, server):
        with pytest.raises(UnknownPrincipalError):
            server.connect("stranger")

    def test_register_with_roles(self, server):
        server.register_user("dora", roles=("reviewer",))
        assert "reviewer" in server.principals.roles_of("dora")

    def test_register_idempotent(self, server):
        server.register_user("ana")  # no UniqueViolation
        assert server.principals.has_user("ana")

    def test_sessions_tracked(self, server):
        s1 = server.connect("ana")
        s2 = server.connect("ben")
        assert {s.user for s in server.sessions()} == {"ana", "ben"}
        s1.disconnect()
        assert {s.user for s in server.sessions()} == {"ben"}
        s2.disconnect()

    def test_disconnected_session_rejects_work(self, server):
        session = server.connect("ana")
        session.disconnect()
        with pytest.raises(SessionError):
            session.create_document("x")


class TestEditingVerbs:
    def test_insert_delete(self, server, doc):
        session = server.connect("ben")
        session.open(doc)
        session.insert(doc, 5, ",")
        assert session.handle(doc).text() == "hello, world"
        session.delete(doc, 0, 2)
        assert session.handle(doc).text() == "llo, world"

    def test_delete_out_of_range(self, server, doc):
        session = server.connect("ben")
        session.open(doc)
        with pytest.raises(InvalidPositionError):
            session.delete(doc, 8, 100)

    def test_ops_require_open_document(self, server, doc):
        session = server.connect("ben")
        with pytest.raises(SessionError):
            session.insert(doc, 0, "x")

    def test_apply_style(self, server, doc):
        session = server.connect("ben")
        session.open(doc)
        style = server.styles.define_style("b", {"bold": True}, "ben")
        session.apply_style(doc, 0, 5, style)
        runs = session.handle(doc).styled_runs()
        assert runs[0] == ("hello", style)

    def test_concurrent_sessions_converge(self, server, doc):
        s1 = server.connect("ana")
        s2 = server.connect("ben")
        h1, h2 = s1.open(doc), s2.open(doc)
        s1.insert(doc, 0, "A")
        s2.insert(doc, h2.length(), "B")
        s1.insert(doc, 3, "C")
        assert h1.text() == h2.text()
        assert h1.check_integrity() == []


class TestSecurityEnforcement:
    def test_write_denied_after_restriction(self, server, doc):
        # Restrict write to a role ben does not hold.
        server.register_user("ana")
        server.acl.grant(doc, "editors", "write", "ana")
        session = server.connect("ben")
        session.open(doc)
        with pytest.raises(AccessDenied):
            session.insert(doc, 0, "x")

    def test_creator_still_writes(self, server, doc):
        server.acl.grant(doc, "editors", "write", "ana")
        session = server.connect("ana")
        session.open(doc)
        session.insert(doc, 0, "x")  # creator bypasses restriction

    def test_read_denied_blocks_open(self, server, doc):
        server.acl.grant(doc, "insiders", "read", "ana")
        session = server.connect("cleo")
        with pytest.raises(AccessDenied):
            session.open(doc)

    def test_protected_range_blocks_delete(self, server, doc):
        ana = server.connect("ana")
        handle = ana.open(doc)
        server.acl.protect_range(handle, 0, 5, "ana")
        ben = server.connect("ben")
        ben.open(doc)
        with pytest.raises(AccessDenied):
            ben.delete(doc, 0, 3)
        # Inserts *between* protected chars are allowed.
        ben.insert(doc, 2, "!")
        # And deleting unprotected text is fine.
        ben.delete(doc, 7, 2)

    def test_layout_permission_separate_from_write(self, server, doc):
        server.acl.grant(doc, "designers", "layout", "ana")
        ben = server.connect("ben")
        ben.open(doc)
        style = server.styles.define_style("b", {"bold": True}, "ben")
        with pytest.raises(AccessDenied):
            ben.apply_style(doc, 0, 2, style)
        ben.insert(doc, 0, "x")  # write still open


class TestClipboard:
    def test_copy_paste_internal_lineage(self, server, doc):
        session = server.connect("ben")
        handle = session.open(doc)
        session.copy(doc, 0, 5)
        session.paste(doc, handle.length())
        assert handle.text() == "hello worldhello"
        copylog = server.db.query(S.COPYLOG).run()
        assert len(copylog) == 1
        assert copylog[0]["src_doc"] == doc
        assert copylog[0]["n_chars"] == 5

    def test_paste_external_source(self, server, doc):
        session = server.connect("ben")
        handle = session.open(doc)
        session.copy_external("quoted", "https://example.org")
        session.paste(doc, 0)
        assert handle.text().startswith("quoted")
        copylog = server.db.query(S.COPYLOG).run()
        assert copylog[0]["external_source"] == "https://example.org"
        assert copylog[0]["src_doc"] is None

    def test_paste_empty_clipboard(self, server, doc):
        session = server.connect("ben")
        session.open(doc)
        with pytest.raises(ClipboardError):
            session.paste(doc, 0)

    def test_copy_out_of_range(self, server, doc):
        session = server.connect("ben")
        session.open(doc)
        with pytest.raises(ClipboardError):
            session.copy(doc, 8, 100)

    def test_cross_document_paste(self, server, doc):
        session = server.connect("ben")
        session.open(doc)
        other = session.create_document("notes", text="")
        session.copy(doc, 6, 5)  # "world"
        session.paste(other.doc, 0)
        assert other.text() == "world"
        copylog = server.db.query(S.COPYLOG).run()
        assert copylog[0]["src_doc"] == doc
        assert copylog[0]["dst_doc"] == other.doc


class TestNotifications:
    def test_other_sessions_notified(self, server, doc):
        s1 = server.connect("ana")
        s2 = server.connect("ben")
        s1.open(doc)
        s2.open(doc)
        s1.insert(doc, 0, "x")
        notes = s2.notifications()
        assert len(notes) == 1
        assert notes[0].origin_user == "ana"
        assert notes[0].doc == doc
        assert S.CHARS in notes[0].tables
        # Originator gets no echo.
        assert s1.notifications() == []

    def test_sessions_without_doc_not_notified(self, server, doc):
        s1 = server.connect("ana")
        s2 = server.connect("ben")
        s1.open(doc)
        s1.insert(doc, 0, "x")
        assert s2.notifications() == []

    def test_drain_clears_inbox(self, server, doc):
        s1 = server.connect("ana")
        s2 = server.connect("ben")
        s1.open(doc)
        s2.open(doc)
        s1.insert(doc, 0, "x")
        s2.notifications()
        assert s2.notifications() == []

    def test_close_stops_notifications(self, server, doc):
        s1 = server.connect("ana")
        s2 = server.connect("ben")
        s1.open(doc)
        s2.open(doc)
        s2.close(doc)
        s1.insert(doc, 0, "x")
        assert s2.notifications() == []


class TestAwareness:
    def test_participants(self, server, doc):
        s1 = server.connect("ana")
        s2 = server.connect("ben")
        s1.open(doc)
        s2.open(doc)
        assert server.awareness.participants(doc) == ["ana", "ben"]
        s2.close(doc)
        assert server.awareness.participants(doc) == ["ana"]

    def test_cursor_positions(self, server, doc):
        s1 = server.connect("ana")
        handle = s1.open(doc)
        s1.set_cursor(doc, 4)
        positions = server.awareness.cursor_positions(handle)
        assert positions["ana"] == 4

    def test_cursor_shifts_with_remote_insert(self, server, doc):
        s1 = server.connect("ana")
        s2 = server.connect("ben")
        handle = s1.open(doc)
        s2.open(doc)
        s1.set_cursor(doc, 4)
        s2.insert(doc, 0, ">>>")
        assert server.awareness.cursor_positions(handle)["ana"] == 7

    def test_cursor_slides_left_when_anchor_deleted(self, server, doc):
        s1 = server.connect("ana")
        s2 = server.connect("ben")
        handle = s1.open(doc)
        s2.open(doc)
        s1.set_cursor(doc, 5)
        s2.delete(doc, 2, 4)  # removes the cursor's anchor char
        pos = server.awareness.cursor_positions(handle)["ana"]
        assert pos == 2

    def test_activity_feed(self, server, doc):
        s1 = server.connect("ana")
        s1.open(doc)
        s1.insert(doc, 0, "x")
        feed = server.awareness.recent_activity()
        assert any(e["what"] == "InsertText" for e in feed)

    def test_shutdown(self, server, doc):
        s1 = server.connect("ana")
        s1.open(doc)
        server.shutdown()
        assert server.sessions() == []


class TestObjectOperations:
    def test_insert_image_undoable(self, server, doc):
        session = server.connect("ben")
        handle = session.open(doc)
        session.insert_image(doc, 2, name="f.png", width=8, height=8)
        assert len(server.objects.objects_in(doc)) == 1
        session.undo(doc)
        assert server.objects.objects_in(doc) == []
        session.redo(doc)
        assert len(server.objects.objects_in(doc)) == 1

    def test_table_lifecycle_with_undo(self, server, doc):
        session = server.connect("ben")
        session.open(doc)
        table = session.insert_table(doc, 0, rows=2, cols=2)
        session.set_cell(doc, table, 0, 0, "v")
        assert server.objects.get(table)["data"]["cells"][0][0] == "v"
        session.delete_object(doc, table)
        assert server.objects.objects_in(doc) == []
        session.undo(doc)        # restores the table (cell kept)
        assert server.objects.get(table)["data"]["cells"][0][0] == "v"

    def test_object_ops_respect_write_permission(self, server, doc):
        server.acl.grant(doc, "editors", "write", "ana")
        session = server.connect("ben")
        session.open(doc)
        with pytest.raises(AccessDenied):
            session.insert_image(doc, 0, name="f", width=1, height=1)

    def test_object_ops_notify_other_sessions(self, server, doc):
        s1 = server.connect("ana")
        s2 = server.connect("ben")
        s1.open(doc)
        s2.open(doc)
        s1.insert_table(doc, 0, rows=1, cols=1)
        notes = s2.notifications()
        assert len(notes) == 1
        assert "tx_objects" in notes[0].tables

    def test_global_undo_covers_objects(self, server, doc):
        s1 = server.connect("ana")
        s2 = server.connect("ben")
        s1.open(doc)
        s2.open(doc)
        s2.insert_image(doc, 0, name="f", width=1, height=1)
        s1.undo_global(doc)
        assert server.objects.objects_in(doc) == []


class TestStructureOperations:
    def test_add_node_spanning_range(self, server, doc):
        session = server.connect("ben")
        session.open(doc)
        node = session.add_structure_node(doc, "section", label="Intro",
                                          start_pos=0, end_pos=4)
        row = server.structure.node(node)
        assert row["label"] == "Intro"
        assert server.structure.node_text(session.handle(doc), node) == \
            "hello"

    def test_structure_permission_enforced(self, server, doc):
        server.acl.grant(doc, "architects", "structure", "ana")
        session = server.connect("ben")
        session.open(doc)
        with pytest.raises(AccessDenied):
            session.add_structure_node(doc, "section")
        # write permission is unaffected.
        session.insert(doc, 0, "x")

    def test_move_and_remove(self, server, doc):
        session = server.connect("ben")
        session.open(doc)
        a = session.add_structure_node(doc, "section", label="A")
        b = session.add_structure_node(doc, "section", label="B")
        session.move_structure_node(doc, b, None, -1)
        roots = server.structure.roots(doc)
        assert [r["label"] for r in roots] == ["B", "A"]
        assert session.remove_structure_node(doc, a) == 1

    def test_structure_change_notifies(self, server, doc):
        s1 = server.connect("ana")
        s2 = server.connect("ben")
        s1.open(doc)
        s2.open(doc)
        s1.add_structure_node(doc, "section")
        notes = s2.notifications()
        assert notes and "tx_structure" in notes[0].tables


class TestServerStatistics:
    def test_statistics_snapshot(self, server, doc):
        session = server.connect("ana")
        session.open(doc)
        session.insert(doc, 0, "x")
        stats = server.statistics()
        assert stats["sessions"] == 1
        assert stats["documents"] == 1
        assert stats["characters"] >= 12
        assert stats["operations"] >= 1
        assert stats["db_commits"] > 0
        assert stats["wal_records"] > 0


class TestPasteIntegrity:
    def test_denied_paste_leaves_no_lineage(self, server, doc):
        server.acl.grant(doc, "editors", "write", "ana")
        ben = server.connect("ben")
        # ben can read but not write.
        handle = ben.open(doc)
        ben.clipboard.set_external("stolen text", "mail")
        with pytest.raises(AccessDenied):
            ben.paste(doc, 0)
        assert server.db.query(S.COPYLOG).count() == 0
        assert handle.text() == "hello world"

    def test_invalid_position_paste_leaves_no_lineage(self, server, doc):
        ben = server.connect("ben")
        ben.open(doc)
        ben.clipboard.set_external("x", "mail")
        with pytest.raises(InvalidPositionError):
            ben.paste(doc, 999)
        assert server.db.query(S.COPYLOG).count() == 0


class TestNoteVerbs:
    def test_add_and_resolve_note(self, server, doc):
        session = server.connect("ben")
        session.open(doc)
        note = session.add_note(doc, 2, "please verify")
        assert server.notes.get(note)["author"] == "ben"
        session.resolve_note(doc, note)
        assert server.notes.notes_in(doc) == []

    def test_note_requires_write(self, server, doc):
        server.acl.grant(doc, "editors", "write", "ana")
        session = server.connect("cleo")
        session.open(doc)
        with pytest.raises(AccessDenied):
            session.add_note(doc, 0, "sneaky")

    def test_note_notifies_sessions(self, server, doc):
        s1 = server.connect("ana")
        s2 = server.connect("ben")
        s1.open(doc)
        s2.open(doc)
        s1.add_note(doc, 0, "hello margin")
        notes = s2.notifications()
        assert notes and "tx_notes" in notes[0].tables


class TestStatisticsThreadSafety:
    """Regression: ``server.stats`` was a plain dict mutated with ``+=``,
    which silently lost increments when sessions operated from multiple
    threads.  The counters now live in the obs registry; operation counts
    must be exact however many threads drive the server."""

    def test_operation_count_exact_under_concurrent_sessions(self, server):
        import threading

        n_threads, ops_each = 4, 25
        workers = []
        for i in range(n_threads):
            user = f"typist{i}"
            server.register_user(user)
            session = server.connect(user)
            handle = session.create_document(f"pad-{i}", text="seed ")
            workers.append((session, handle.doc))
        base_ops = server.stats["operations"]
        barrier = threading.Barrier(n_threads)
        errors = []

        def hammer(session, doc):
            try:
                barrier.wait()
                for __ in range(ops_each):
                    session.insert(doc, 0, "x")
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        threads = [threading.Thread(target=hammer, args=worker)
                   for worker in workers]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        assert server.stats["operations"] - base_ops \
            == n_threads * ops_each
        stats = server.statistics()
        assert stats["operations"] == server.stats["operations"]
        assert stats["sessions"] == n_threads

    def test_statistics_merge_into_the_obs_registry(self, server):
        session = server.connect("ana")
        handle = session.create_document("obs", text="hello")
        session.insert(handle.doc, 0, "x")
        snapshot = server.db.metrics_snapshot()
        assert snapshot["collab.operations"]["value"] \
            == server.stats["operations"]
        assert snapshot["collab.sessions"]["value"] == len(server.sessions())
        session.disconnect()
        assert server.db.metrics_snapshot()["collab.sessions"]["value"] \
            == len(server.sessions())


class TestHeldDeliveryMetrics:
    """Regression: ``collab.held_seconds`` must be observed exactly once
    per held notification — at the drain that releases it — and never
    for notifications that were delivered immediately."""

    def test_drain_observes_held_seconds_once_per_notification(self):
        from repro.faults import DeliveryFault, FaultInjector, FaultPlan

        plan = FaultPlan(delivery=DeliveryFault(p_hold=1.0, reorder=True),
                         seed=11)
        server = CollaborationServer(node="held",
                                     faults=FaultInjector(plan))
        for user in ("ana", "ben"):
            server.register_user(user)
        ana = server.connect("ana")
        ben = server.connect("ben")
        handle = ana.create_document("held", text="seed ")
        ben.open(handle.doc)
        for i in range(5):
            ana.insert(handle.doc, i, "x")
        held = server.delivery.stats["held"]
        assert held == 5
        assert server.db.metrics_snapshot()[
            "collab.held_seconds"]["count"] == 0
        assert server.delivery.drain() == held
        snapshot = server.db.metrics_snapshot()
        assert snapshot["collab.held_seconds"]["count"] == held
        # Draining an empty backlog must not fabricate observations.
        assert server.delivery.drain() == 0
        assert server.db.metrics_snapshot()[
            "collab.held_seconds"]["count"] == held

    def test_immediate_delivery_never_counts_as_held(self, server, doc):
        ana = server.connect("ana")
        ben = server.connect("ben")
        ana.open(doc)
        ben.open(doc)
        ana.insert(doc, 0, "x")
        snapshot = server.db.metrics_snapshot()
        assert snapshot["collab.held_seconds"]["count"] == 0
        assert snapshot["collab.replication_seconds"]["count"] >= 1


class TestDisconnectMidBatchOverTheWire:
    """A wire client killed between ``batch_begin`` and ``batch_end``
    must leave no trace: the reaper rolls the partial batch back and
    releases the op lock so surviving clients keep full service."""

    def test_dead_client_batch_rolls_back_and_frees_the_lock(self):
        from time import monotonic

        from repro.net import NetworkClient, ServerThread

        collab = CollaborationServer()
        for user in ("ana", "ben"):
            collab.register_user(user)
        with ServerThread(collab) as thread:
            ana = NetworkClient("127.0.0.1", thread.port, "ana")
            ben = NetworkClient("127.0.0.1", thread.port, "ben")
            try:
                s_ana = ana.session()
                doc = s_ana.create_document("doc", text="keep").doc
                h_ben = ben.session().open(doc)
                dead_id = ana.session_id
                aborts_before = collab.db.stats["aborts"]

                # Open a batch, write into it, then die without a
                # batch_end or a BYE — just a severed socket.
                ana._rpc("batch_begin", {})
                anchor = s_ana.handle(doc).begin_char
                s_ana.insert_after(doc, anchor, "!")
                ana._sock.close()
                ana._sock = None

                deadline = monotonic() + 10.0
                while any(s.id == dead_id for s in collab.sessions()):
                    assert monotonic() < deadline, "session never reaped"
                # The reaper aborted the partial batch: nothing of the
                # uncommitted insert survives on the server...
                assert collab.db.stats["aborts"] > aborts_before
                judge = collab.connect("ben")
                assert judge.open(doc).text() == "keep"
                # ...and the op lock is free: the survivor can edit.
                s_ben = ben.session()
                s_ben.insert(doc, 4, "ers")
                ben.sync(doc)
                assert h_ben.text() == "keepers"
            finally:
                ana.close()
                ben.close()
