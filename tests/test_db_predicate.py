"""Unit tests for the predicate expression tree."""

from repro.db.predicate import ALWAYS, Contains, Lambda, col


class TestComparisons:
    def test_eq(self):
        pred = col("x") == 3
        assert pred.matches({"x": 3})
        assert not pred.matches({"x": 4})

    def test_ne(self):
        pred = col("x") != 3
        assert pred.matches({"x": 4})
        assert not pred.matches({"x": 3})

    def test_ordering_ops(self):
        row = {"x": 5}
        assert (col("x") > 4).matches(row)
        assert (col("x") >= 5).matches(row)
        assert (col("x") < 6).matches(row)
        assert (col("x") <= 5).matches(row)
        assert not (col("x") > 5).matches(row)
        assert not (col("x") < 5).matches(row)

    def test_null_semantics(self):
        row = {"x": None}
        assert (col("x") == None).matches(row)  # noqa: E711
        assert not (col("x") == 3).matches(row)
        assert not (col("x") < 3).matches(row)
        assert (col("x") != 3).matches(row)
        assert not (col("x") != None).matches(row)  # noqa: E711

    def test_missing_column_treated_as_null(self):
        assert not (col("zzz") == 1).matches({"x": 1})

    def test_comparison_against_none_constant(self):
        assert (col("x") != None).matches({"x": 5})  # noqa: E711


class TestCombinators:
    def test_and(self):
        pred = (col("x") > 1) & (col("x") < 5)
        assert pred.matches({"x": 3})
        assert not pred.matches({"x": 0})
        assert not pred.matches({"x": 7})

    def test_or(self):
        pred = (col("x") == 1) | (col("x") == 2)
        assert pred.matches({"x": 1})
        assert pred.matches({"x": 2})
        assert not pred.matches({"x": 3})

    def test_not(self):
        pred = ~(col("x") == 1)
        assert pred.matches({"x": 2})
        assert not pred.matches({"x": 1})

    def test_always(self):
        assert ALWAYS.matches({})
        assert ALWAYS.matches({"anything": 1})


class TestSpecialPredicates:
    def test_isin(self):
        pred = col("x").isin([1, 2, 3])
        assert pred.matches({"x": 2})
        assert not pred.matches({"x": 9})
        assert not pred.matches({"x": None})

    def test_isin_unhashable_value(self):
        pred = col("x").isin([1])
        assert not pred.matches({"x": [1]})

    def test_between(self):
        pred = col("x").between(2, 4)
        assert pred.matches({"x": 2})
        assert pred.matches({"x": 4})
        assert not pred.matches({"x": 5})

    def test_contains_case_sensitive(self):
        pred = Contains("s", "Hell")
        assert pred.matches({"s": "Hello"})
        assert not pred.matches({"s": "hello"})

    def test_contains_case_insensitive(self):
        pred = col("s").contains("HELLO", case_sensitive=False)
        assert pred.matches({"s": "say hello!"})

    def test_contains_non_string(self):
        assert not Contains("s", "x").matches({"s": 3})

    def test_lambda(self):
        pred = Lambda(lambda r: r["x"] % 2 == 0, label="even")
        assert pred.matches({"x": 4})
        assert not pred.matches({"x": 3})
        assert "even" in repr(pred)


class TestIndexHints:
    def test_eq_hint(self):
        hints = list((col("x") == 3).index_hints())
        assert len(hints) == 1
        assert hints[0].column == "x"
        assert hints[0].op == "eq"
        assert hints[0].value == 3

    def test_range_hints(self):
        (hint,) = (col("x") >= 3).index_hints()
        assert hint.op == "range"
        assert hint.low == 3 and hint.low_inclusive

        (hint,) = (col("x") < 9).index_hints()
        assert hint.op == "range"
        assert hint.high == 9 and not hint.high_inclusive

    def test_and_concatenates_hints(self):
        pred = (col("x") == 1) & (col("y") >= 2)
        hints = list(pred.index_hints())
        assert {h.column for h in hints} == {"x", "y"}

    def test_or_yields_no_hints(self):
        pred = (col("x") == 1) | (col("y") == 2)
        assert list(pred.index_hints()) == []

    def test_not_yields_no_hints(self):
        assert list((~(col("x") == 1)).index_hints()) == []

    def test_isin_hint(self):
        (hint,) = col("x").isin([1, 2]).index_hints()
        assert hint.op == "in"
        assert set(hint.values) == {1, 2}

    def test_null_comparison_yields_no_hint(self):
        assert list((col("x") == None).index_hints()) == []  # noqa: E711
