"""Tests for the foundation modules: ids, clock, events, errors."""

import pytest

from repro.clock import SimulatedClock, SystemClock
from repro.errors import (
    AccessDenied,
    DatabaseError,
    SecurityError,
    TendaxError,
    TransactionAborted,
    UndoError,
)
from repro.events import EventBus
from repro.ids import IdGenerator, IdNamespace, Oid


class TestOid:
    def test_str_and_parse_roundtrip(self):
        oid = Oid("db.char", 42)
        assert Oid.parse(str(oid)) == oid

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            Oid.parse("nonsense")
        with pytest.raises(ValueError):
            Oid.parse(":5")

    def test_ordering_within_node(self):
        assert Oid("n", 1) < Oid("n", 2)

    def test_equality_and_hash(self):
        assert Oid("n", 1) == Oid("n", 1)
        assert len({Oid("n", 1), Oid("n", 1), Oid("n", 2)}) == 2


class TestIdGenerator:
    def test_monotonic_unique(self):
        gen = IdGenerator("x")
        ids = [gen.next() for __ in range(100)]
        assert len(set(ids)) == 100
        assert ids == sorted(ids)

    def test_invalid_node(self):
        with pytest.raises(ValueError):
            IdGenerator("")
        with pytest.raises(ValueError):
            IdGenerator("a:b")

    def test_thread_safety(self):
        import threading
        gen = IdGenerator("x")
        seen = []

        def worker():
            for __ in range(500):
                seen.append(gen.next())

        threads = [threading.Thread(target=worker) for __ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(set(seen)) == 2000

    def test_namespace_kinds_isolated(self):
        ns = IdNamespace("db")
        doc = ns.next("doc")
        char = ns.next("char")
        assert doc.node == "db.doc"
        assert char.node == "db.char"
        assert ns.generator("doc") is ns.generator("doc")


class TestClocks:
    def test_system_clock_advances(self):
        clock = SystemClock()
        assert clock.now() <= clock.now()

    def test_simulated_clock_strictly_increasing(self):
        clock = SimulatedClock()
        times = [clock.now() for __ in range(5)]
        assert times == sorted(times)
        assert len(set(times)) == 5

    def test_simulated_advance(self):
        clock = SimulatedClock(start=100.0, tick=0.0)
        assert clock.now() == 100.0
        clock.advance(50)
        assert clock.peek() == 150.0

    def test_no_backwards_time(self):
        clock = SimulatedClock()
        with pytest.raises(ValueError):
            clock.advance(-1)
        with pytest.raises(ValueError):
            SimulatedClock(tick=-0.1)


class TestEventBusEdgeCases:
    def test_handler_added_during_delivery_not_called(self):
        bus = EventBus()
        seen = []

        def handler(event):
            seen.append("first")
            bus.subscribe("x", lambda e: seen.append("late"))

        bus.subscribe("x", handler)
        bus.publish("x")
        assert seen == ["first"]
        bus.publish("x")
        assert seen.count("late") == 1

    def test_cancel_during_delivery(self):
        bus = EventBus()
        seen = []
        sub2_holder = {}

        def canceller(event):
            seen.append("canceller")
            sub2_holder["sub"].cancel()

        bus.subscribe("x", canceller)
        sub2_holder["sub"] = bus.subscribe("x", lambda e: seen.append("two"))
        bus.publish("x")
        # The cancelled handler is skipped because `active` is checked.
        assert seen == ["canceller"]

    def test_len(self):
        bus = EventBus()
        sub = bus.subscribe("a", lambda e: None)
        assert len(bus) == 1
        sub.cancel()
        assert len(bus) == 0

    def test_exact_topic_no_glob(self):
        bus = EventBus()
        seen = []
        bus.subscribe("db.commit", lambda e: seen.append(1))
        bus.publish("db.commit.extra")
        assert seen == []


class TestErrorHierarchy:
    def test_all_derive_from_tendax_error(self):
        for exc in (DatabaseError, TransactionAborted, AccessDenied,
                    SecurityError, UndoError):
            assert issubclass(exc, TendaxError)

    def test_catchable_as_base(self):
        with pytest.raises(TendaxError):
            raise AccessDenied("nope")
