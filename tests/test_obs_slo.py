"""SLO burn-rate evaluation and the health verdict.

Scenarios run on a simulated clock through the real telemetry rings:
a clean latency stream must leave every shipped SLO green; a sustained
burn must trip **both** windows (fast proves it is still happening,
slow proves it is real) and flip the labelled ``slo.*`` gauges; a burn
that *stops* must recover once the fast window rolls clear — the whole
point of the multi-window method.
"""

from __future__ import annotations

import pytest

from repro.clock import SimulatedClock
from repro.obs import (
    DEFAULT_SLOS,
    DEFAULT_THRESHOLDS,
    HealthThresholds,
    MetricsRegistry,
    SLOEvaluator,
    SLOSpec,
    TelemetryStore,
    evaluate_health,
)

START = 1_000_000.0


def drive(latency_at, *, seconds: int = 120, per_second: int = 20):
    """Observe ``latency_at(second)`` into both SLO metrics, sampling 1/s."""
    registry = MetricsRegistry()
    clock = SimulatedClock(start=START, tick=0.0)
    store = TelemetryStore(registry, clock, interval=1.0, capacity=1024)
    fsync = registry.histogram("wal.fsync_seconds")
    repl = registry.histogram("collab.replication_seconds")
    for second in range(seconds):
        latency = latency_at(second)
        for __ in range(per_second):
            fsync.observe(latency)
            repl.observe(latency)
        store.sample(now=START + second)
    return registry, store


class TestSLOEvaluator:
    def test_clean_stream_is_green(self):
        registry, store = drive(lambda s: 0.002)
        results = SLOEvaluator(store).evaluate(now=START + 119)
        assert {r["slo"] for r in results} == {
            "durable_keystroke", "replication_visibility",
            "replica_apply_lag", "derived_staleness"}
        assert not any(r["breached"] for r in results)
        snap = registry.snapshot()
        assert snap["slo.breached{slo=durable_keystroke}"]["value"] == 0.0

    def test_sustained_burn_breaches_and_reddens_gauges(self):
        registry, store = drive(lambda s: 0.2 if s >= 60 else 0.002)
        results = SLOEvaluator(store).evaluate(now=START + 119)
        # The replica-lag and staleness specs saw no observations (this
        # node neither follows a leader nor runs a changefeed) and must
        # stay green while the two data-carrying specs burn.
        for name in ("replica_apply_lag", "derived_staleness"):
            quiet = next(r for r in results if r["slo"] == name)
            assert not quiet["breached"]
        burning = [r for r in results
                   if r["slo"] not in ("replica_apply_lag",
                                       "derived_staleness")]
        assert burning and all(r["breached"] for r in burning)
        for r in burning:
            assert r["fast"]["burn"] > r["burn_threshold"]
            assert r["slow"]["burn"] > r["burn_threshold"]
        snap = registry.snapshot()
        assert snap["slo.breached{slo=durable_keystroke}"]["value"] == 1.0
        assert snap[
            "slo.burn_rate{slo=durable_keystroke,window=fast}"]["value"] > 2.0

    def test_recovery_clears_the_fast_window_first(self):
        # 60s of burn, then 120s clean: at the end the fast (1m) window
        # is clean while the slow (5m) one still remembers the burn —
        # no breach, because breach needs BOTH.
        registry, store = drive(
            lambda s: 0.2 if s < 60 else 0.002, seconds=180)
        results = SLOEvaluator(store).evaluate(now=START + 179)
        for r in results:
            if r["slo"] in ("replica_apply_lag",
                            "derived_staleness"):  # no data on this node
                assert not r["breached"]
                continue
            assert r["fast"]["burn"] <= r["burn_threshold"]
            assert r["slow"]["burn"] > r["burn_threshold"]
            assert not r["breached"]
        snap = registry.snapshot()
        assert snap["slo.breached{slo=durable_keystroke}"]["value"] == 0.0

    def test_no_traffic_means_no_breach(self):
        registry = MetricsRegistry()
        store = TelemetryStore(registry,
                               SimulatedClock(start=START, tick=0.0))
        results = SLOEvaluator(store, registry=registry).evaluate(
            now=START)
        assert not any(r["breached"] for r in results)
        assert all(r["fast"] is None and r["slow"] is None
                   for r in results)

    def test_objectives_sit_on_bucket_bounds(self):
        from repro.obs import DEFAULT_LATENCY_BUCKETS
        for spec in DEFAULT_SLOS:
            assert spec.objective in DEFAULT_LATENCY_BUCKETS

    def test_budget_property(self):
        spec = SLOSpec("x", "m", objective=0.1, target=0.99)
        assert spec.budget == pytest.approx(0.01)


class TestHealth:
    def test_quiet_system_is_ok(self):
        registry, store = drive(lambda s: 0.002)
        health = evaluate_health(registry.snapshot(), store)
        assert health["status"] == "ok"
        assert {c["check"] for c in health["checks"]} == {
            "wal.fsync_stall", "net.send_queue", "gc.backlog",
            "net.churn", "net.faults"}

    def test_fsync_stall_degrades_then_goes_unhealthy(self):
        registry, store = drive(lambda s: 0.5)
        health = evaluate_health(registry.snapshot(), store)
        by = {c["check"]: c for c in health["checks"]}
        assert by["wal.fsync_stall"]["status"] == "degraded"
        registry2, store2 = drive(lambda s: 2.0)
        health2 = evaluate_health(registry2.snapshot(), store2)
        assert health2["status"] == "unhealthy"

    def test_socket_faults_degrade(self):
        registry = MetricsRegistry()
        clock = SimulatedClock(start=START, tick=0.0)
        store = TelemetryStore(registry, clock, interval=1.0)
        dropped = registry.counter("net.frames_dropped")
        store.sample(now=START)
        dropped.inc(5)
        store.sample(now=START + 5)
        health = evaluate_health(registry.snapshot(), store)
        by = {c["check"]: c for c in health["checks"]}
        assert by["net.faults"]["status"] == "degraded"
        assert health["status"] == "degraded"

    def test_fault_window_rolls_clear(self):
        registry = MetricsRegistry()
        clock = SimulatedClock(start=START, tick=0.0)
        store = TelemetryStore(registry, clock, interval=1.0,
                               capacity=1024)
        dropped = registry.counter("net.frames_dropped")
        dropped.inc(5)
        for second in range(180):
            store.sample(now=START + second)
        window = DEFAULT_THRESHOLDS.window
        health = evaluate_health(registry.snapshot(), store)
        by = {c["check"]: c for c in health["checks"]}
        assert by["net.faults"]["status"] == "ok", \
            f"faults older than the {window}s window must not degrade"

    def test_send_queue_shed_is_unhealthy(self):
        registry = MetricsRegistry()
        clock = SimulatedClock(start=START, tick=0.0)
        store = TelemetryStore(registry, clock, interval=1.0)
        sheds = registry.counter("net.backpressure_closes")
        store.sample(now=START)
        sheds.inc()
        store.sample(now=START + 1)
        health = evaluate_health(registry.snapshot(), store)
        assert health["status"] == "unhealthy"

    def test_queue_occupancy_degrades_with_context_limit(self):
        registry = MetricsRegistry()
        registry.gauge("net.send_queue_depth",
                       labels={"conn": "7"}).set(90)
        health = evaluate_health(registry.snapshot(), None,
                                 context={"send_queue_limit": 100})
        by = {c["check"]: c for c in health["checks"]}
        assert by["net.send_queue"]["status"] == "degraded"

    def test_churn_does_not_extrapolate_short_uptimes(self):
        # 3 handshakes in the first two seconds of uptime is not a
        # 90/minute storm: the check divides by the configured window.
        registry = MetricsRegistry()
        clock = SimulatedClock(start=START, tick=0.0)
        store = TelemetryStore(registry, clock, interval=1.0)
        connects = registry.counter("net.connects")
        store.sample(now=START)
        connects.inc(3)
        store.sample(now=START + 2)
        health = evaluate_health(registry.snapshot(), store)
        by = {c["check"]: c for c in health["checks"]}
        assert by["net.churn"]["status"] == "ok"
        assert by["net.churn"]["value"] == pytest.approx(3.0)

    def test_churn_storm_still_degrades(self):
        registry = MetricsRegistry()
        clock = SimulatedClock(start=START, tick=0.0)
        store = TelemetryStore(registry, clock, interval=1.0)
        connects = registry.counter("net.connects")
        store.sample(now=START)
        connects.inc(500)
        store.sample(now=START + 30)
        health = evaluate_health(registry.snapshot(), store)
        by = {c["check"]: c for c in health["checks"]}
        assert by["net.churn"]["status"] == "degraded"

    def test_custom_thresholds(self):
        registry, store = drive(lambda s: 0.002)
        strict = HealthThresholds(fsync_stall_p99=1e-6)
        health = evaluate_health(registry.snapshot(), store,
                                 thresholds=strict)
        by = {c["check"]: c for c in health["checks"]}
        assert by["wal.fsync_stall"]["status"] == "degraded"
