"""Span lifecycle tests: balance under commits, aborts and crashes.

The tracer's contract is *balance*: every span started is ended exactly
once — by commit, by abort, or by the ``CrashSignal`` guard when a fault
plan kills the process mid-transaction.  The crash-point tests reuse the
fault injector's named points so a span leak on any death path fails
here, not in production triage.
"""

from __future__ import annotations

import pytest

from repro.db import Database, column
from repro.errors import CrashSignal
from repro.faults import FaultInjector, FaultPlan
from repro.obs import NULL_SPAN, Tracer


def make_db(tmp_path, plan: FaultPlan | None = None) -> Database:
    path = str(tmp_path / "wal.jsonl")
    faults = FaultInjector(plan) if plan is not None else None
    db = Database("trc", wal_path=path, faults=faults)
    db.create_table("kv", [column("k", "str"), column("v", "int")], key="k")
    return db


def recording(db: Database) -> list:
    """Attach a sink so the tracer records; returns the finished spans."""
    finished: list = []
    db.obs.tracer.add_sink(finished.append)
    return finished


# ---------------------------------------------------------------------------
# Tracer basics
# ---------------------------------------------------------------------------

class TestTracerBasics:
    def test_no_sink_means_null_span_fast_path(self, tmp_path):
        db = make_db(tmp_path)
        assert db.obs.tracer.start("txn") is NULL_SPAN
        db.insert("kv", {"k": "a", "v": 1})
        # Nothing recorded, nothing leaked.
        assert db.obs.registry.get("trace.spans_started").value == 0
        assert db.obs.tracer.open_spans() == []

    def test_commit_and_abort_close_spans_with_outcome(self, tmp_path):
        db = make_db(tmp_path)
        finished = recording(db)
        db.insert("kv", {"k": "a", "v": 1})
        txn = db.begin()
        txn.insert("kv", {"k": "b", "v": 2})
        txn.abort()
        statuses = [s.status for s in finished if s.name == "txn"]
        assert statuses == ["commit", "abort"]
        assert db.obs.tracer.open_spans() == []
        assert db.obs.registry.get("trace.active_spans").value == 0

    def test_scoped_span_parents_detached_spans(self):
        tracer = Tracer()
        finished = []
        tracer.add_sink(finished.append)
        with tracer.span("outer") as outer:
            child = tracer.start("inner")
            assert child.parent_id == outer.span_id
            child.end("ok")
        assert [s.name for s in finished] == ["inner", "outer"]
        assert finished[1].status == "ok"

    def test_scoped_span_closes_as_error_on_exception(self):
        tracer = Tracer()
        finished = []
        tracer.add_sink(finished.append)
        with pytest.raises(RuntimeError):
            with tracer.span("work"):
                raise RuntimeError("boom")
        assert finished[0].status == "error"
        assert tracer.open_spans() == []

    def test_end_is_idempotent(self):
        tracer = Tracer()
        finished = []
        tracer.add_sink(finished.append)
        span = tracer.start("once")
        span.end("commit")
        span.end("abort")
        assert len(finished) == 1
        assert finished[0].status == "commit"


# ---------------------------------------------------------------------------
# Span balance across injected crashes
# ---------------------------------------------------------------------------

#: (crash point, hit) pairs chosen so the crash lands inside a live
#: transaction.  File appends go CREATE_TABLE(1), then per insert
#: BEGIN, INSERT, COMMIT — so e.g. hit 6 is the second txn's INSERT.
CRASH_SITES = [
    ("wal.before_append", 2),    # BEGIN append: span just started
    ("wal.before_append", 6),    # INSERT append mid-transaction
    ("wal.mid_record", 7),       # torn COMMIT record
    ("wal.before_fsync", 2),     # second commit's fsync
    ("txn.pre_commit", 2),
    ("txn.post_commit", 2),
]


class TestSpanBalanceUnderCrashes:
    @pytest.mark.parametrize("point,hit", CRASH_SITES,
                             ids=[f"{p}@{h}" for p, h in CRASH_SITES])
    def test_crash_closes_exactly_one_span_as_crash(self, tmp_path,
                                                    point, hit):
        db = make_db(tmp_path, FaultPlan.crash_once(point, hit=hit))
        finished = recording(db)
        tracer = db.obs.tracer
        with pytest.raises(CrashSignal):
            db.insert("kv", {"k": "a", "v": 1})
            db.insert("kv", {"k": "b", "v": 2})
        # Balance: no span left open, and the doomed transaction's span
        # closed exactly once, with the crash outcome winning even though
        # the post-mortem context manager still ran abort().
        assert tracer.open_spans() == []
        assert db.obs.registry.get("trace.active_spans").value == 0
        crashed = [s for s in finished if s.status == "crash"]
        assert len(crashed) == 1
        started = db.obs.registry.get("trace.spans_started").value
        assert started == len(finished)

    def test_checkpoint_crash_leaks_no_spans(self, tmp_path):
        plan = FaultPlan.crash_once("checkpoint.mid_snapshot")
        db = make_db(tmp_path, plan)
        finished = recording(db)
        db.insert("kv", {"k": "a", "v": 1})
        with pytest.raises(CrashSignal):
            db.checkpoint()
        assert db.obs.tracer.open_spans() == []
        assert [s.status for s in finished if s.name == "txn"] == ["commit"]

    def test_random_schedules_never_leak_spans(self, tmp_path, crash_seed):
        """Torture-style: wherever the seeded crash lands, spans balance."""
        plan = FaultPlan.random(crash_seed, max_hit=12)
        path = str(tmp_path / "wal.jsonl")
        db = Database("trc", wal_path=path, faults=FaultInjector(plan))
        finished = recording(db)
        try:
            # The crash may land anywhere — even the CREATE_TABLE append.
            db.create_table("kv", [column("k", "str"), column("v", "int")],
                            key="k")
            for i in range(6):
                db.insert("kv", {"k": f"k{i}", "v": i})
                if i % 3 == 2:
                    db.checkpoint()
        except CrashSignal:
            pass
        assert db.obs.tracer.open_spans() == []
        assert db.obs.registry.get("trace.active_spans").value == 0
        started = db.obs.registry.get("trace.spans_started").value
        assert started == len(finished)
        assert len([s for s in finished if s.status == "crash"]) <= 1
