"""Tests for the baselines and the workload generators."""

import random

import pytest

from repro.baselines import (
    FileLockedError,
    FileWordProcessor,
    OffsetDocumentStore,
)
from repro.db import Database
from repro.errors import InvalidPositionError, TendaxError
from repro.workload import (
    CorpusSpec,
    build_knowledge_base,
    generate_corpus,
    generate_text,
    load_corpus,
    run_lan_party,
)


class TestFileWordProcessor:
    def test_single_writer_lock(self):
        wp = FileWordProcessor()
        wp.create("doc.txt", "content")
        wp.open_for_edit("doc.txt", "ana")
        with pytest.raises(FileLockedError):
            wp.open_for_edit("doc.txt", "ben")
        wp.close("doc.txt", "ana")
        wp.open_for_edit("doc.txt", "ben")

    def test_reopen_by_same_user(self):
        wp = FileWordProcessor()
        wp.create("doc.txt")
        wp.open_for_edit("doc.txt", "ana")
        wp.open_for_edit("doc.txt", "ana")  # re-entrant

    def test_save_requires_lock(self):
        wp = FileWordProcessor()
        wp.create("doc.txt")
        with pytest.raises(FileLockedError):
            wp.save("doc.txt", "ana", "text")

    def test_insert_delete(self):
        wp = FileWordProcessor()
        wp.create("doc.txt", "hello world")
        wp.open_for_edit("doc.txt", "ana")
        wp.insert("doc.txt", "ana", 5, ",")
        wp.delete("doc.txt", "ana", 0, 2)
        assert wp.get("doc.txt").text == "llo, world"

    def test_whole_file_write_accounting(self):
        wp = FileWordProcessor()
        wp.create("doc.txt", "x" * 100)
        wp.open_for_edit("doc.txt", "ana")
        wp.insert("doc.txt", "ana", 50, "y")
        # One keystroke rewrote the whole file.
        assert wp.stats["bytes_written"] == 101

    def test_scan_search(self):
        wp = FileWordProcessor()
        wp.create("a.txt", "the fox")
        wp.create("b.txt", "the dog")
        assert wp.scan_search("FOX") == ["a.txt"]

    def test_duplicate_create(self):
        wp = FileWordProcessor()
        wp.create("a.txt")
        with pytest.raises(TendaxError):
            wp.create("a.txt")

    def test_history(self):
        wp = FileWordProcessor(keep_history=True)
        wp.create("a.txt", "v1")
        wp.open_for_edit("a.txt", "ana")
        wp.save("a.txt", "ana", "v2")
        assert wp.get("a.txt").history == ["v1"]


class TestOffsetBaseline:
    def test_matches_string_semantics(self):
        db = Database("ob")
        store = OffsetDocumentStore(db)
        doc = store.create("d", "ana", "hello world")
        store.insert(doc, 5, ", dear", "ana")
        store.delete(doc, 0, 2, "ana")
        assert store.text(doc) == "llo, dear world"
        assert store.length(doc) == 15

    def test_bounds_checked(self):
        db = Database("ob")
        store = OffsetDocumentStore(db)
        doc = store.create("d", "ana", "abc")
        with pytest.raises(InvalidPositionError):
            store.insert(doc, 4, "x", "ana")
        with pytest.raises(InvalidPositionError):
            store.delete(doc, 2, 5, "ana")

    def test_random_ops_match_model(self):
        rng = random.Random(5)
        db = Database("ob")
        store = OffsetDocumentStore(db)
        doc = store.create("d", "ana", "seed text")
        model = "seed text"
        for __ in range(30):
            if model and rng.random() < 0.3:
                pos = rng.randrange(len(model))
                count = min(rng.randint(1, 4), len(model) - pos)
                store.delete(doc, pos, count, "ana")
                model = model[:pos] + model[pos + count:]
            else:
                pos = rng.randint(0, len(model))
                text = rng.choice(["ab", "x", "zzz"])
                store.insert(doc, pos, text, "ana")
                model = model[:pos] + text + model[pos:]
        assert store.text(doc) == model


class TestCorpusGeneration:
    def test_deterministic(self):
        spec = CorpusSpec(n_docs=5, seed=11)
        assert generate_corpus(spec) == generate_corpus(spec)

    def test_different_seeds_differ(self):
        a = generate_corpus(CorpusSpec(n_docs=5, seed=1))
        b = generate_corpus(CorpusSpec(n_docs=5, seed=2))
        assert a != b

    def test_topics_cycled(self):
        docs = generate_corpus(CorpusSpec(n_docs=8))
        assert len({d.topic for d in docs}) == 4

    def test_text_word_count_approx(self):
        rng = random.Random(3)
        text = generate_text(rng, "database", 50)
        assert 40 <= len(text.split()) <= 60

    def test_load_corpus_creates_documents(self):
        db = Database("t")
        from repro.text import DocumentStore
        store = DocumentStore(db)
        handles = load_corpus(store, CorpusSpec(n_docs=4, seed=2))
        assert len(handles) == 4
        assert all(h.length() > 0 for h in handles)
        meta = store.meta(handles[0].doc)
        assert meta["props"]["topic"] in ("database", "editing",
                                          "workflow", "business")


class TestScenarios:
    def test_lan_party_converges(self):
        report = run_lan_party(rounds=15, seed=3)
        assert report.converged
        assert report.chain_intact
        assert report.operations == 45
        assert set(report.per_user) == {"ana", "ben", "cleo"}

    def test_lan_party_deterministic_ops(self):
        r1 = run_lan_party(rounds=10, seed=9)
        r2 = run_lan_party(rounds=10, seed=9)
        assert r1.final_length == r2.final_length

    def test_lan_party_latency_capture(self):
        report = run_lan_party(rounds=5, measure_latency=True)
        assert len(report.op_latencies) == 15
        assert all(lat >= 0 for lat in report.op_latencies)

    def test_knowledge_base_population(self):
        kb = build_knowledge_base(n_docs=8, n_reads=10, n_pastes=4, seed=2)
        assert len(kb.handles) == 8
        from repro.text import dbschema as S
        assert kb.server.db.query(S.COPYLOG).count() >= 1
        reads = kb.server.db.query(S.ACCESS_LOG).count()
        assert reads > 10  # creates + reads + writes
