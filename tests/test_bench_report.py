"""Tests for the benchmark reporting pipeline (``benchmarks/report.py``).

Covers the paper-style table renderer (against a golden file, so format
drift is a conscious decision) and the BENCH_obs.json schema contract
the smoke-bench CI step enforces.
"""

from __future__ import annotations

import copy
import json
import os

import pytest

from benchmarks.report import (
    SCHEMA_ID,
    build_obs_payload,
    load_groups,
    render,
    render_obs,
    validate_obs_payload,
)
from repro.obs import REQUIRED_METRICS, MetricsRegistry, compact_snapshot

GOLDEN = os.path.join(os.path.dirname(__file__), "data",
                      "report_golden.txt")

#: A frozen two-group pytest-benchmark payload (only the fields the
#: renderer consumes).
SAMPLE_BENCH = {
    "benchmarks": [
        {
            "group": "C1 keystroke mid-doc n=500",
            "name": "test_keystroke_tendax[500]",
            "stats": {"median": 0.000234, "mean": 0.000245},
            "extra_info": {"system": "tendax", "n": 500},
        },
        {
            "group": "C1 keystroke mid-doc n=500",
            "name": "test_keystroke_file_baseline[500]",
            "stats": {"median": 0.00311, "mean": 0.00305},
            "extra_info": {"system": "file-wp", "n": 500},
        },
        {
            "group": "D6 content search n=50",
            "name": "test_indexed_content_search[50]",
            "stats": {"median": 0.00037, "mean": 0.00039},
            "extra_info": {"mode": "indexed", "docs": 50},
        },
        {
            "name": "test_ungrouped_probe",
            "stats": {"median": 2e-07, "mean": 2.5e-07},
            "extra_info": {},
        },
    ]
}


def sample_obs_payload() -> dict:
    """A valid payload built the way the bench harness builds it."""
    registry = MetricsRegistry()
    for name in REQUIRED_METRICS:
        kind = "histogram" if name.endswith("_seconds") else "counter"
        if kind == "histogram":
            registry.histogram(name).observe(0.001)
        else:
            registry.counter(name).inc(7)
    registry.gauge("txn.active").set(0)
    metrics = compact_snapshot(registry.snapshot())
    return build_obs_payload([
        {"name": "test_keystroke_tendax[500]",
         "group": "C1 keystroke mid-doc n=500", "metrics": metrics},
    ])


class TestTableRendering:
    def test_render_matches_golden_file(self, tmp_path):
        path = tmp_path / "bench.json"
        path.write_text(json.dumps(SAMPLE_BENCH), encoding="utf-8")
        rendered = render(load_groups(str(path)))
        with open(GOLDEN, "r", encoding="utf-8") as handle:
            assert rendered == handle.read()

    def test_groups_sorted_and_rows_ordered_by_median(self, tmp_path):
        path = tmp_path / "bench.json"
        path.write_text(json.dumps(SAMPLE_BENCH), encoding="utf-8")
        rendered = render(load_groups(str(path)))
        c1 = rendered.index("C1 keystroke")
        d6 = rendered.index("D6 content search")
        assert c1 < d6
        # Within C1, tendax (faster median) renders before file-wp.
        assert rendered.index("tendax") < rendered.index("file-wp")


class TestObsSchema:
    def test_valid_payload_passes(self):
        payload = sample_obs_payload()
        assert validate_obs_payload(payload) == []
        assert validate_obs_payload(payload, require_core=True) == []
        assert payload["schema"] == SCHEMA_ID

    def test_payload_is_json_serialisable(self):
        payload = sample_obs_payload()
        assert json.loads(json.dumps(payload)) == payload

    def test_render_obs_mentions_every_metric(self):
        payload = sample_obs_payload()
        text = render_obs(payload)
        for name in REQUIRED_METRICS:
            assert name in text

    def test_wrong_schema_id_rejected(self):
        payload = sample_obs_payload()
        payload["schema"] = "tendax.bench-obs.v0"
        assert any("schema" in e for e in validate_obs_payload(payload))

    def test_unknown_metric_name_rejected(self):
        payload = sample_obs_payload()
        payload["benchmarks"][0]["metrics"]["txn.visited"] = {
            "type": "counter", "value": 1}
        errors = validate_obs_payload(payload)
        assert any("txn.visited" in e and "catalogue" in e for e in errors)

    @pytest.mark.parametrize("mutate, fragment", [
        (lambda p: p.pop("benchmarks"), "'benchmarks' must be a list"),
        (lambda p: p["benchmarks"].append("nope"), "must be an object"),
        (lambda p: p["benchmarks"][0].pop("name"), ".name"),
        (lambda p: p["benchmarks"][0].__setitem__("group", 7), ".group"),
        (lambda p: p["benchmarks"][0].__setitem__("metrics", []),
         ".metrics"),
        (lambda p: p["benchmarks"][0]["metrics"]["txn.begun"].pop("value"),
         "numeric 'value'"),
        (lambda p: p["benchmarks"][0]["metrics"]["txn.begun"]
         .__setitem__("type", "meter"), "unknown type"),
    ])
    def test_malformed_entries_rejected(self, mutate, fragment):
        payload = copy.deepcopy(sample_obs_payload())
        mutate(payload)
        errors = validate_obs_payload(payload)
        assert any(fragment in e for e in errors), errors

    def test_require_core_detects_name_regression(self):
        payload = sample_obs_payload()
        del payload["benchmarks"][0]["metrics"]["txn.begun"]
        assert validate_obs_payload(payload) == []
        errors = validate_obs_payload(payload, require_core=True)
        assert any("txn.begun" in e for e in errors)
