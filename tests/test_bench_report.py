"""Tests for the benchmark reporting pipeline (``benchmarks/report.py``).

Covers the paper-style table renderer (against a golden file, so format
drift is a conscious decision) and the BENCH_obs.json schema contract
the smoke-bench CI step enforces.
"""

from __future__ import annotations

import copy
import json
import os

import pytest

from benchmarks.report import (
    SCHEMA_ID,
    build_obs_payload,
    load_groups,
    render,
    render_obs,
    validate_obs_payload,
)
from repro.obs import REQUIRED_METRICS, MetricsRegistry, compact_snapshot

GOLDEN = os.path.join(os.path.dirname(__file__), "data",
                      "report_golden.txt")

#: A frozen two-group pytest-benchmark payload (only the fields the
#: renderer consumes).
SAMPLE_BENCH = {
    "benchmarks": [
        {
            "group": "C1 keystroke mid-doc n=500",
            "name": "test_keystroke_tendax[500]",
            "stats": {"median": 0.000234, "mean": 0.000245},
            "extra_info": {"system": "tendax", "n": 500},
        },
        {
            "group": "C1 keystroke mid-doc n=500",
            "name": "test_keystroke_file_baseline[500]",
            "stats": {"median": 0.00311, "mean": 0.00305},
            "extra_info": {"system": "file-wp", "n": 500},
        },
        {
            "group": "D6 content search n=50",
            "name": "test_indexed_content_search[50]",
            "stats": {"median": 0.00037, "mean": 0.00039},
            "extra_info": {"mode": "indexed", "docs": 50},
        },
        {
            "name": "test_ungrouped_probe",
            "stats": {"median": 2e-07, "mean": 2.5e-07},
            "extra_info": {},
        },
    ]
}


def sample_obs_payload() -> dict:
    """A valid payload built the way the bench harness builds it."""
    registry = MetricsRegistry()
    for name in REQUIRED_METRICS:
        kind = "histogram" if name.endswith("_seconds") else "counter"
        if kind == "histogram":
            registry.histogram(name).observe(0.001)
        else:
            registry.counter(name).inc(7)
    registry.gauge("txn.active").set(0)
    metrics = compact_snapshot(registry.snapshot())
    return build_obs_payload([
        {"name": "test_keystroke_tendax[500]",
         "group": "C1 keystroke mid-doc n=500", "metrics": metrics},
    ])


class TestTableRendering:
    def test_render_matches_golden_file(self, tmp_path):
        path = tmp_path / "bench.json"
        path.write_text(json.dumps(SAMPLE_BENCH), encoding="utf-8")
        rendered = render(load_groups(str(path)))
        with open(GOLDEN, "r", encoding="utf-8") as handle:
            assert rendered == handle.read()

    def test_groups_sorted_and_rows_ordered_by_median(self, tmp_path):
        path = tmp_path / "bench.json"
        path.write_text(json.dumps(SAMPLE_BENCH), encoding="utf-8")
        rendered = render(load_groups(str(path)))
        c1 = rendered.index("C1 keystroke")
        d6 = rendered.index("D6 content search")
        assert c1 < d6
        # Within C1, tendax (faster median) renders before file-wp.
        assert rendered.index("tendax") < rendered.index("file-wp")


class TestObsSchema:
    def test_valid_payload_passes(self):
        payload = sample_obs_payload()
        assert validate_obs_payload(payload) == []
        assert validate_obs_payload(payload, require_core=True) == []
        assert payload["schema"] == SCHEMA_ID

    def test_payload_is_json_serialisable(self):
        payload = sample_obs_payload()
        assert json.loads(json.dumps(payload)) == payload

    def test_render_obs_mentions_every_metric(self):
        payload = sample_obs_payload()
        text = render_obs(payload)
        for name in REQUIRED_METRICS:
            assert name in text

    def test_wrong_schema_id_rejected(self):
        payload = sample_obs_payload()
        payload["schema"] = "tendax.bench-obs.v0"
        assert any("schema" in e for e in validate_obs_payload(payload))

    def test_unknown_metric_name_rejected(self):
        payload = sample_obs_payload()
        payload["benchmarks"][0]["metrics"]["txn.visited"] = {
            "type": "counter", "value": 1}
        errors = validate_obs_payload(payload)
        assert any("txn.visited" in e and "catalogue" in e for e in errors)

    @pytest.mark.parametrize("mutate, fragment", [
        (lambda p: p.pop("benchmarks"), "'benchmarks' must be a list"),
        (lambda p: p["benchmarks"].append("nope"), "must be an object"),
        (lambda p: p["benchmarks"][0].pop("name"), ".name"),
        (lambda p: p["benchmarks"][0].__setitem__("group", 7), ".group"),
        (lambda p: p["benchmarks"][0].__setitem__("metrics", []),
         ".metrics"),
        (lambda p: p["benchmarks"][0]["metrics"]["txn.begun"].pop("value"),
         "numeric 'value'"),
        (lambda p: p["benchmarks"][0]["metrics"]["txn.begun"]
         .__setitem__("type", "meter"), "unknown type"),
    ])
    def test_malformed_entries_rejected(self, mutate, fragment):
        payload = copy.deepcopy(sample_obs_payload())
        mutate(payload)
        errors = validate_obs_payload(payload)
        assert any(fragment in e for e in errors), errors

    def test_require_core_detects_name_regression(self):
        payload = sample_obs_payload()
        del payload["benchmarks"][0]["metrics"]["txn.begun"]
        assert validate_obs_payload(payload) == []
        errors = validate_obs_payload(payload, require_core=True)
        assert any("txn.begun" in e for e in errors)


class TestObsSchemaV2:
    """v2 additions: labelled metric names and the per-bench telemetry
    time-series block; v1 payloads must stay readable."""

    def test_v1_payload_still_validates(self):
        payload = sample_obs_payload()
        payload["schema"] = "tendax.bench-obs.v1"
        assert validate_obs_payload(payload) == []

    def test_labelled_metric_names_accepted(self):
        payload = sample_obs_payload()
        payload["benchmarks"][0]["metrics"][
            "collab.notifications{doc=tendax.doc:1}"] = {
                "type": "counter", "value": 3}
        assert validate_obs_payload(payload) == []

    def test_labelled_name_with_bad_key_rejected(self):
        payload = sample_obs_payload()
        payload["benchmarks"][0]["metrics"][
            "collab.notifications{host=web1}"] = {
                "type": "counter", "value": 3}
        errors = validate_obs_payload(payload)
        assert any("catalogue" in e for e in errors)

    def _telemetry(self) -> dict:
        from repro.clock import SimulatedClock
        from repro.obs import MetricsRegistry, TelemetryStore

        registry = MetricsRegistry()
        clock = SimulatedClock(start=1_000.0, tick=0.0)
        store = TelemetryStore(registry, clock, interval=1.0)
        counter = registry.counter("net.ops")
        for second in range(15):
            counter.inc()
            store.sample(now=1_000.0 + second)
        return store.snapshot()

    def test_real_telemetry_snapshot_validates(self):
        payload = sample_obs_payload()
        payload["benchmarks"][0]["telemetry"] = self._telemetry()
        assert validate_obs_payload(payload) == []

    @pytest.mark.parametrize("mutate, fragment", [
        (lambda t: t.__setitem__("schema", "nope"), ".schema"),
        (lambda t: t.pop("series"), ".series"),
        (lambda t: t.__setitem__("windows", "x"), ".windows"),
        (lambda t: t["windows"].__setitem__(
            "net.ops", {"10s": {"rate": 1.0}}), "needs a 'kind'"),
        (lambda t: t["series"].__setitem__(
            "no.such.metric", {"kind": "counter", "points": []}),
         "catalogue"),
    ])
    def test_malformed_telemetry_rejected(self, mutate, fragment):
        payload = sample_obs_payload()
        telemetry = self._telemetry()
        mutate(telemetry)
        payload["benchmarks"][0]["telemetry"] = telemetry
        errors = validate_obs_payload(payload)
        assert any(fragment in e for e in errors), errors


class TestPerfTrendGate:
    """The perf-trend gate in ``tools/smoke_bench.py``.

    The tool is a script, not a package module, so it is loaded from its
    file path; ``check_trend`` takes explicit paths so the tests drive it
    against synthetic pytest-benchmark dumps.
    """

    @pytest.fixture(scope="class")
    def smoke(self):
        import importlib.util
        path = os.path.join(os.path.dirname(__file__), os.pardir,
                            "tools", "smoke_bench.py")
        spec = importlib.util.spec_from_file_location("_smoke_bench", path)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        return module

    def _dump(self, tmp_path, smoke, medians: dict) -> str:
        by_key = {v: k for k, v in smoke.TREND_NODES.items()}
        payload = {"benchmarks": [
            {"fullname": by_key[key], "stats": {"median": value}}
            for key, value in medians.items()
        ]}
        path = tmp_path / "smoke.json"
        path.write_text(json.dumps(payload))
        return str(path)

    def _full(self, smoke, value: float) -> dict:
        return {key: value for key in smoke.TREND_NODES.values()}

    def test_record_then_pass_on_same_numbers(self, tmp_path, smoke):
        dump = self._dump(tmp_path, smoke, self._full(smoke, 0.01))
        trend = str(tmp_path / "trend.json")
        assert smoke.check_trend(record_baseline=True, smoke_json=dump,
                                 trend_path=trend) == 0
        assert smoke.check_trend(smoke_json=dump, trend_path=trend) == 0

    def test_small_jitter_passes_big_regression_fails(self, tmp_path, smoke):
        trend = str(tmp_path / "trend.json")
        base = self._dump(tmp_path, smoke, self._full(smoke, 0.01))
        smoke.check_trend(record_baseline=True, smoke_json=base,
                          trend_path=trend)
        jitter = self._dump(tmp_path, smoke, self._full(smoke, 0.018))
        assert smoke.check_trend(smoke_json=jitter, trend_path=trend) == 0
        blown = self._dump(tmp_path, smoke, self._full(smoke, 0.031))
        assert smoke.check_trend(smoke_json=blown, trend_path=trend) == 1

    def test_tolerance_env_override(self, tmp_path, smoke, monkeypatch):
        trend = str(tmp_path / "trend.json")
        base = self._dump(tmp_path, smoke, self._full(smoke, 0.01))
        smoke.check_trend(record_baseline=True, smoke_json=base,
                          trend_path=trend)
        blown = self._dump(tmp_path, smoke, self._full(smoke, 0.05))
        assert smoke.check_trend(smoke_json=blown, trend_path=trend) == 1
        monkeypatch.setenv("BENCH_TREND_MAX_RATIO", "10")
        assert smoke.check_trend(smoke_json=blown, trend_path=trend) == 0

    def test_missing_trend_node_fails(self, tmp_path, smoke):
        trend = str(tmp_path / "trend.json")
        medians = self._full(smoke, 0.01)
        medians.pop("group_commit_multiwriter")
        dump = self._dump(tmp_path, smoke, medians)
        assert smoke.check_trend(smoke_json=dump, trend_path=trend) == 1

    def test_missing_baseline_file_fails(self, tmp_path, smoke):
        dump = self._dump(tmp_path, smoke, self._full(smoke, 0.01))
        assert smoke.check_trend(smoke_json=dump,
                                 trend_path=str(tmp_path / "no.json")) == 1

    def test_committed_baseline_covers_all_trend_nodes(self, smoke):
        with open(smoke.TREND_PATH, "r", encoding="utf-8") as handle:
            baseline = json.load(handle)
        assert set(baseline["medians"]) == set(smoke.TREND_NODES.values())

    def test_slo_gate_clean_passes(self, smoke, capsys):
        assert smoke.check_slo() == 0
        out = capsys.readouterr().out
        assert "[ok]" in out and "BREACH" not in out

    def test_slo_gate_burn_fails(self, smoke, capsys):
        assert smoke.check_slo(burn=True) == 1
        captured = capsys.readouterr()
        assert "[BREACH]" in captured.out
        assert "SLO breach" in captured.err
