"""The wire scrape lane: STATS / HEALTH envelopes end to end.

A real :class:`ServerThread` on loopback TCP, scraped by the blocking
:func:`repro.net.scrape` helper — the monitoring topology (`repro dash`,
Prometheus pollers) in miniature.  Covers the pre-auth scrape lane
(JSON and Prometheus formats, token enforcement), the mid-session
``health`` RPC verb, and the health verdict degrading under an armed
socket fault plan and recovering once the faults stop and the window
rolls clear.
"""

from __future__ import annotations

import time

import pytest

from repro.collab import CollaborationServer
from repro.errors import AccessDenied
from repro.faults import FaultInjector, FaultPlan
from repro.net import NetworkClient, ServerThread, scrape
from repro.obs import TELEMETRY_SCHEMA


def make_collab(n_users: int = 2) -> CollaborationServer:
    collab = CollaborationServer()
    for i in range(n_users):
        collab.register_user(f"user{i}")
    return collab


def typing_burst(session, doc, chars: str = "hello") -> None:
    handle = session.handle(doc)
    for char in chars:
        session.insert(doc, handle.length(), char)


class TestStatsScrape:
    def test_json_scrape_carries_metrics_and_telemetry(self):
        collab = make_collab()
        with ServerThread(collab, telemetry_interval=0.0) as thread:
            client = NetworkClient("127.0.0.1", thread.port, "user0")
            try:
                session = client.session()
                doc = session.create_document("scrape").doc
                typing_burst(session, doc)
                thread.server.telemetry.sample()
                payload = scrape("127.0.0.1", thread.port, kind="stats")
            finally:
                client.close()
        assert payload["node"] == collab.db.node
        assert payload["metrics"]["net.ops"]["value"] >= 5
        telemetry = payload["telemetry"]
        assert telemetry["schema"] == TELEMETRY_SCHEMA
        labelled = [n for n in telemetry["series"] if "{" in n]
        assert any(n.startswith("net.op_seconds{verb=") for n in labelled)
        assert payload["net"]["scrapes"] >= 1

    def test_prom_scrape_is_text_exposition(self):
        collab = make_collab()
        with ServerThread(collab, telemetry_interval=0.0) as thread:
            client = NetworkClient("127.0.0.1", thread.port, "user0")
            try:
                session = client.session()
                doc = session.create_document("prom").doc
                typing_burst(session, doc)
                text = scrape("127.0.0.1", thread.port, kind="stats",
                              fmt="prom")
            finally:
                client.close()
        assert isinstance(text, str)
        assert "# TYPE tendax_net_ops counter" in text
        assert 'tendax_net_op_seconds_bucket{verb="insert",le="+Inf"}' \
            in text
        assert text.endswith("\n")

    def test_scrape_without_series_is_lean(self):
        collab = make_collab()
        with ServerThread(collab, telemetry_interval=0.0) as thread:
            thread.server.telemetry.sample()
            payload = scrape("127.0.0.1", thread.port, kind="stats",
                             series=False)
        assert "telemetry" not in payload

    def test_consecutive_scrapes_on_one_connection(self):
        # The scrape lane keeps answering on the same socket: the
        # blocking helper opens one per call, so just assert repeated
        # calls keep working and the scrape counter climbs.
        collab = make_collab()
        with ServerThread(collab, telemetry_interval=0.0) as thread:
            first = scrape("127.0.0.1", thread.port, kind="stats")
            second = scrape("127.0.0.1", thread.port, kind="stats")
        assert second["net"]["scrapes"] > first["net"]["scrapes"]

    def test_token_enforced_on_the_scrape_lane(self):
        collab = make_collab()
        with ServerThread(collab, token="hunter2",
                          telemetry_interval=0.0) as thread:
            with pytest.raises(AccessDenied):
                scrape("127.0.0.1", thread.port, kind="stats")
            with pytest.raises(AccessDenied):
                scrape("127.0.0.1", thread.port, kind="health",
                       token="wrong")
            payload = scrape("127.0.0.1", thread.port, kind="stats",
                             token="hunter2")
        assert payload["metrics"]


class TestHealthScrape:
    def test_health_reports_ok_with_all_checks(self):
        collab = make_collab()
        with ServerThread(collab, telemetry_interval=0.05) as thread:
            client = NetworkClient("127.0.0.1", thread.port, "user0")
            try:
                session = client.session()
                doc = session.create_document("health").doc
                typing_burst(session, doc)
                time.sleep(0.2)        # let the sampler tick
                health = scrape("127.0.0.1", thread.port, kind="health")
            finally:
                client.close()
        assert health["status"] == "ok"
        assert {c["check"] for c in health["checks"]} == {
            "wal.fsync_stall", "net.send_queue", "gc.backlog",
            "net.churn", "net.faults", "feed.lag"}

    def test_mid_session_health_verb(self):
        collab = make_collab()
        with ServerThread(collab, telemetry_interval=0.0) as thread:
            client = NetworkClient("127.0.0.1", thread.port, "user0")
            try:
                health = client.server_health()
            finally:
                client.close()
        assert health["status"] in ("ok", "degraded", "unhealthy")
        assert health["checks"]

    def test_health_degrades_under_faults_and_recovers(self):
        plan = FaultPlan.net_only(20060101, p_drop=0.5, reorder=False)
        injector = FaultInjector(plan, armed=True)
        collab = make_collab()
        with ServerThread(collab, faults=injector,
                          telemetry_interval=0.0) as thread:
            telemetry = thread.server.telemetry
            writer = NetworkClient("127.0.0.1", thread.port, "user0")
            watcher = NetworkClient("127.0.0.1", thread.port, "user1")
            try:
                session = writer.session()
                doc = session.create_document("faulty").doc
                watcher.session().open(doc)
                base = telemetry.clock.now()
                telemetry.sample(now=base)
                # Type through the armed fault plan: NOTIFY frames to
                # the watcher get dropped/delayed and counted.
                typing_burst(session, doc, "x" * 40)
                telemetry.sample(now=base + 1.0)
                health = thread.server.health_payload()
                assert health["status"] == "degraded", health
                by = {c["check"]: c for c in health["checks"]}
                assert by["net.faults"]["status"] == "degraded"

                # Disarm and let the 60s fault window roll clear: the
                # verdict must recover without a restart.
                injector.armed = False
                telemetry.sample(now=base + 100.0)
                telemetry.sample(now=base + 101.0)
                recovered = thread.server.health_payload()
                by = {c["check"]: c for c in recovered["checks"]}
                assert by["net.faults"]["status"] == "ok", recovered
            finally:
                writer.close()
                watcher.close()


class TestServePipeline:
    def test_sampler_task_feeds_slo_gauges(self):
        collab = make_collab()
        with ServerThread(collab, telemetry_interval=0.05) as thread:
            client = NetworkClient("127.0.0.1", thread.port, "user0")
            try:
                session = client.session()
                doc = session.create_document("slo").doc
                typing_burst(session, doc)
                deadline = time.monotonic() + 5.0
                while time.monotonic() < deadline:
                    snap = collab.db.metrics_snapshot()
                    if "slo.breached{slo=durable_keystroke}" in snap:
                        break
                    time.sleep(0.05)
            finally:
                client.close()
        snap = collab.db.metrics_snapshot()
        assert "slo.breached{slo=durable_keystroke}" in snap
        assert snap["obs.samples"]["value"] >= 1
