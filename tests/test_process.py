"""Tests for in-document workflows and task lists."""

import pytest

from repro.db import Database
from repro.errors import ProcessError, RoutingError, TaskStateError
from repro.process import TaskList, WorkflowManager
from repro.security import PrincipalRegistry
from repro.text import DocumentStore


@pytest.fixture
def db():
    return Database("t")


@pytest.fixture
def principals(db):
    registry = PrincipalRegistry(db)
    for user in ("ana", "ben", "cleo"):
        registry.add_user(user)
    registry.add_role("translators")
    registry.assign_role("cleo", "translators")
    return registry


@pytest.fixture
def wf(db, principals):
    return WorkflowManager(db, principals)


@pytest.fixture
def doc(db):
    store = DocumentStore(db)
    return store.create("contract", "ana", text="contract text").doc


class TestProcessLifecycle:
    def test_define_and_start(self, wf, doc):
        proc = wf.define_process(doc, "review", "ana")
        assert wf.process_info(proc)["state"] == "defined"
        t1 = wf.add_task(proc, "t1", "ben", "ana")
        ready = wf.start_process(proc, "ana")
        assert ready == [t1]
        assert wf.process_info(proc)["state"] == "running"

    def test_double_start_rejected(self, wf, doc):
        proc = wf.define_process(doc, "p", "ana")
        wf.start_process(proc, "ana")
        with pytest.raises(ProcessError):
            wf.start_process(proc, "ana")

    def test_process_completes_when_tasks_done(self, wf, doc):
        proc = wf.define_process(doc, "p", "ana")
        t1 = wf.add_task(proc, "t1", "ben", "ana")
        wf.start_process(proc, "ana")
        wf.complete_task(t1, "ben")
        assert wf.process_info(proc)["state"] == "completed"

    def test_cancel_process_cancels_tasks(self, wf, doc):
        proc = wf.define_process(doc, "p", "ana")
        t1 = wf.add_task(proc, "t1", "ben", "ana")
        wf.start_process(proc, "ana")
        wf.cancel_process(proc, "ana")
        assert wf.task_info(t1)["state"] == "cancelled"
        assert wf.process_info(proc)["state"] == "cancelled"

    def test_processes_in_document(self, wf, doc):
        wf.define_process(doc, "a", "ana")
        wf.define_process(doc, "b", "ana")
        assert [p["name"] for p in wf.processes_in(doc)] == ["a", "b"]


class TestDependencies:
    def test_dependent_task_waits(self, wf, doc):
        proc = wf.define_process(doc, "p", "ana")
        t1 = wf.add_task(proc, "t1", "ben", "ana")
        t2 = wf.add_task(proc, "t2", "ben", "ana", depends_on=[t1])
        wf.start_process(proc, "ana")
        assert wf.task_info(t2)["state"] == "waiting"
        newly = wf.complete_task(t1, "ben")
        assert newly == [t2]
        assert wf.task_info(t2)["state"] == "ready"

    def test_multi_dependency(self, wf, doc):
        proc = wf.define_process(doc, "p", "ana")
        t1 = wf.add_task(proc, "t1", "ben", "ana")
        t2 = wf.add_task(proc, "t2", "ben", "ana")
        t3 = wf.add_task(proc, "t3", "ben", "ana", depends_on=[t1, t2])
        wf.start_process(proc, "ana")
        wf.complete_task(t1, "ben")
        assert wf.task_info(t3)["state"] == "waiting"
        wf.complete_task(t2, "ben")
        assert wf.task_info(t3)["state"] == "ready"

    def test_cancelled_dependency_counts_as_settled(self, wf, doc):
        proc = wf.define_process(doc, "p", "ana")
        t1 = wf.add_task(proc, "t1", "ben", "ana")
        t2 = wf.add_task(proc, "t2", "ben", "ana", depends_on=[t1])
        wf.start_process(proc, "ana")
        wf.cancel_task(t1, "ana")
        assert wf.task_info(t2)["state"] == "ready"

    def test_cross_process_dependency_rejected(self, wf, doc):
        p1 = wf.define_process(doc, "p1", "ana")
        p2 = wf.define_process(doc, "p2", "ana")
        t1 = wf.add_task(p1, "t1", "ben", "ana")
        with pytest.raises(ProcessError):
            wf.add_task(p2, "t2", "ben", "ana", depends_on=[t1])


class TestDynamicBehaviour:
    def test_add_task_at_runtime(self, wf, doc):
        proc = wf.define_process(doc, "p", "ana")
        t1 = wf.add_task(proc, "t1", "ben", "ana")
        wf.start_process(proc, "ana")
        t2 = wf.add_task(proc, "late", "ben", "ana")
        assert wf.task_info(t2)["state"] == "ready"  # no deps -> ready now
        wf.complete_task(t1, "ben")
        assert wf.process_info(proc)["state"] == "running"  # t2 still open

    def test_route_task(self, wf, doc):
        proc = wf.define_process(doc, "p", "ana")
        t1 = wf.add_task(proc, "t1", "ben", "ana")
        wf.start_process(proc, "ana")
        wf.route_task(t1, "cleo", "ana")
        with pytest.raises(RoutingError):
            wf.complete_task(t1, "ben")  # no longer his
        wf.complete_task(t1, "cleo")

    def test_route_to_unknown_rejected(self, wf, doc):
        proc = wf.define_process(doc, "p", "ana")
        t1 = wf.add_task(proc, "t1", "ben", "ana")
        with pytest.raises(RoutingError):
            wf.route_task(t1, "ghost", "ana")

    def test_routing_history_recorded(self, wf, doc):
        proc = wf.define_process(doc, "p", "ana")
        t1 = wf.add_task(proc, "t1", "ben", "ana")
        wf.route_task(t1, "cleo", "ana")
        events = [e["event"] for e in wf.task_info(t1)["history"]]
        assert events == ["created", "routed"]


class TestRoleAssignment:
    def test_role_member_can_work_task(self, wf, doc):
        proc = wf.define_process(doc, "p", "ana")
        t1 = wf.add_task(proc, "translate", "translators", "ana")
        wf.start_process(proc, "ana")
        wf.start_task(t1, "cleo")  # cleo is in translators
        wf.complete_task(t1, "cleo")
        info = wf.task_info(t1)
        assert info["completed_by"] == "cleo"

    def test_non_member_rejected(self, wf, doc):
        proc = wf.define_process(doc, "p", "ana")
        t1 = wf.add_task(proc, "translate", "translators", "ana")
        wf.start_process(proc, "ana")
        with pytest.raises(RoutingError):
            wf.start_task(t1, "ben")

    def test_unknown_assignee_rejected(self, wf, doc):
        proc = wf.define_process(doc, "p", "ana")
        with pytest.raises(RoutingError):
            wf.add_task(proc, "t", "nobody", "ana")


class TestTaskStates:
    def test_start_requires_ready(self, wf, doc):
        proc = wf.define_process(doc, "p", "ana")
        t1 = wf.add_task(proc, "t1", "ben", "ana")
        with pytest.raises(TaskStateError):
            wf.start_task(t1, "ben")  # process not started yet

    def test_complete_from_ready_or_in_progress(self, wf, doc):
        proc = wf.define_process(doc, "p", "ana")
        t1 = wf.add_task(proc, "t1", "ben", "ana")
        t2 = wf.add_task(proc, "t2", "ben", "ana")
        wf.start_process(proc, "ana")
        wf.complete_task(t1, "ben")           # directly from ready
        wf.start_task(t2, "ben")
        wf.complete_task(t2, "ben")           # from in_progress

    def test_double_complete_rejected(self, wf, doc):
        proc = wf.define_process(doc, "p", "ana")
        t1 = wf.add_task(proc, "t1", "ben", "ana")
        wf.start_process(proc, "ana")
        wf.complete_task(t1, "ben")
        with pytest.raises(TaskStateError):
            wf.complete_task(t1, "ben")

    def test_status_counts(self, wf, doc):
        proc = wf.define_process(doc, "p", "ana")
        t1 = wf.add_task(proc, "t1", "ben", "ana")
        wf.add_task(proc, "t2", "ben", "ana", depends_on=[t1])
        wf.start_process(proc, "ana")
        status = wf.process_status(proc)
        assert status["tasks"]["ready"] == 1
        assert status["tasks"]["waiting"] == 1


class TestTaskList:
    def test_inbox_includes_role_tasks(self, wf, doc):
        tl = TaskList(wf)
        proc = wf.define_process(doc, "p", "ana")
        wf.add_task(proc, "direct", "cleo", "ana")
        wf.add_task(proc, "via-role", "translators", "ana")
        wf.start_process(proc, "ana")
        names = [t["name"] for t in tl.tasks_for("cleo")]
        assert sorted(names) == ["direct", "via-role"]
        assert tl.tasks_for("ben") == []

    def test_tasks_in_document(self, wf, doc):
        tl = TaskList(wf)
        proc = wf.define_process(doc, "p", "ana")
        wf.add_task(proc, "t1", "ben", "ana")
        assert len(tl.tasks_in_document(doc)) == 1
        assert tl.tasks_in_document(doc, states=("done",)) == []

    def test_workload_by_assignee(self, wf, doc):
        tl = TaskList(wf)
        proc = wf.define_process(doc, "p", "ana")
        wf.add_task(proc, "t1", "ben", "ana")
        wf.add_task(proc, "t2", "ben", "ana")
        wf.add_task(proc, "t3", "translators", "ana")
        assert tl.workload_by_assignee() == {"ben": 2, "translators": 1}

    def test_render_inbox(self, wf, doc):
        tl = TaskList(wf)
        proc = wf.define_process(doc, "p", "ana")
        wf.add_task(proc, "review it", "ben", "ana")
        wf.start_process(proc, "ana")
        text = tl.render_inbox("ben")
        assert "review it" in text
        assert tl.render_inbox("cleo") == "cleo: no open tasks"


class TestHistoryBounded:
    def test_history_capped(self, wf, doc):
        from repro.process.workflow import TASK_HISTORY_LIMIT
        proc = wf.define_process(doc, "p", "ana")
        task = wf.add_task(proc, "t", "ben", "ana")
        for i in range(TASK_HISTORY_LIMIT + 50):
            wf.route_task(task, ["ben", "cleo"][i % 2], "ana")
        history = wf.task_info(task)["history"]
        assert len(history) == TASK_HISTORY_LIMIT
        # The newest events are the ones kept.
        assert history[-1]["event"] == "routed"
