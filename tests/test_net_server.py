"""Server-side behaviour of the network layer: auth, errors, batching,
awareness, reconnect, backpressure, and the in-process/wire mix.

Complements ``test_net_protocol.py`` (wire format + fuzz) and
``test_net_convergence.py`` (fault-plan convergence): these tests pin
the RPC semantics of :class:`~repro.net.CollabNetServer` over real
loopback sockets.
"""

from __future__ import annotations

import socket
from time import monotonic

import pytest

from repro.collab import CollaborationServer
from repro.errors import (
    AccessDenied,
    InvalidPositionError,
    NetError,
    UnknownPrincipalError,
)
from repro.net import NetworkClient, ServerThread

SETTLE_SECONDS = 10.0


@pytest.fixture
def collab():
    server = CollaborationServer()
    for user in ("ana", "ben"):
        server.register_user(user)
    return server


@pytest.fixture
def thread(collab):
    with ServerThread(collab) as t:
        yield t


def wait_until(condition, timeout: float = SETTLE_SECONDS) -> None:
    deadline = monotonic() + timeout
    while not condition():
        assert monotonic() < deadline, "condition never became true"


class TestHandshake:
    def test_token_required(self, collab):
        with ServerThread(collab, token="sesame") as t:
            with pytest.raises(AccessDenied):
                NetworkClient("127.0.0.1", t.port, "ana", token="wrong")
            client = NetworkClient("127.0.0.1", t.port, "ana",
                                   token="sesame")
            try:
                assert client.session_id > 0
            finally:
                client.close()

    def test_unknown_user_rejected(self, thread):
        with pytest.raises(UnknownPrincipalError):
            NetworkClient("127.0.0.1", thread.port, "stranger")

    def test_register_on_hello(self, collab, thread):
        client = NetworkClient("127.0.0.1", thread.port, "dora",
                               register=True)
        try:
            assert collab.principals.has_user("dora")
            assert client.session().user == "dora"
        finally:
            client.close()

    def test_session_identity_travels(self, collab, thread):
        client = NetworkClient("127.0.0.1", thread.port, "ana",
                               editor="vim", os_name="plan9")
        try:
            session = next(s for s in collab.sessions()
                           if s.id == client.session_id)
            assert (session.editor, session.os_name) == ("vim", "plan9")
        finally:
            client.close()


class TestRpcSemantics:
    def test_application_error_keeps_the_connection(self, thread):
        client = NetworkClient("127.0.0.1", thread.port, "ana")
        try:
            session = client.session()
            doc = session.create_document("doc", text="ab").doc
            with pytest.raises(InvalidPositionError):
                session.insert(doc, 99, "x")
            # The error was scoped to the op: the connection still works.
            session.insert(doc, 2, "c")
            assert session.handle(doc).text() == "abc"
        finally:
            client.close()

    def test_unknown_verb_is_an_application_error(self, thread):
        client = NetworkClient("127.0.0.1", thread.port, "ana")
        try:
            with pytest.raises(NetError, match="unknown verb"):
                client._rpc("frobnicate", {})
            assert client.ping() < SETTLE_SECONDS
        finally:
            client.close()

    def test_acks_carry_the_durable_lsn(self, tmp_path):
        server = CollaborationServer(wal_path=str(tmp_path / "net.wal"))
        server.register_user("ana")
        with ServerThread(server) as t:
            client = NetworkClient("127.0.0.1", t.port, "ana")
            try:
                session = client.session()
                doc = session.create_document("doc").doc
                before = server.db.wal.durable_lsn
                session.insert(doc, 0, "x")
                # The insert's ACK is built after its own commit made it
                # to disk, so the durable LSN must have advanced.
                assert server.db.wal.durable_lsn > before
            finally:
                client.close()

    def test_batch_commits_as_one_transaction(self, collab, thread):
        client = NetworkClient("127.0.0.1", thread.port, "ana")
        try:
            session = client.session()
            doc = session.create_document("doc").doc
            commits_before = collab.db.stats["commits"]
            # OID-anchored typing, like the editor's cursor: positions
            # cannot resolve against a batch's uncommitted rows.
            with session.batch():
                anchor = session.handle(doc).begin_char
                for ch in "batch":
                    anchor = session.insert_after(doc, anchor, ch)[0]
            assert session.handle(doc).text() == "batch"
            assert collab.db.stats["commits"] == commits_before + 1
        finally:
            client.close()

    def test_batch_abort_rolls_back(self, thread):
        client = NetworkClient("127.0.0.1", thread.port, "ana")
        try:
            session = client.session()
            doc = session.create_document("doc", text="keep").doc
            with pytest.raises(RuntimeError):
                with session.batch():
                    session.insert(doc, 4, "!")
                    raise RuntimeError("editor crashed mid-batch")
            client.sync(doc)
            assert session.handle(doc).text() == "keep"
        finally:
            client.close()

    def test_undo_over_the_wire(self, thread):
        client = NetworkClient("127.0.0.1", thread.port, "ana")
        try:
            session = client.session()
            doc = session.create_document("doc", text="abc").doc
            session.insert(doc, 3, "d")
            session.undo(doc)
            assert session.handle(doc).text() == "abc"
            session.redo(doc)
            assert session.handle(doc).text() == "abcd"
        finally:
            client.close()


class TestAwareness:
    def test_cursor_broadcast(self, thread):
        ana = NetworkClient("127.0.0.1", thread.port, "ana")
        ben = NetworkClient("127.0.0.1", thread.port, "ben")
        try:
            s_ana = ana.session()
            doc = s_ana.create_document("doc", text="hello").doc
            h_ben = ben.session().open(doc)
            anchor = h_ben.char_oid_at(2)
            ben.publish_cursor(doc, anchor, ())
            wait_until(lambda: (ana.poll(timeout=0.05) or True)
                       and ben.session_id in ana.remote_cursors.get(doc, {}))
            state = ana.remote_cursors[doc][ben.session_id]
            assert state["user"] == "ben"
            assert state["anchor"] == anchor
        finally:
            ana.close()
            ben.close()


class TestReconnect:
    def test_reconnect_resyncs_missed_edits(self, thread):
        ana = NetworkClient("127.0.0.1", thread.port, "ana")
        ben = NetworkClient("127.0.0.1", thread.port, "ben")
        try:
            s_ana = ana.session()
            doc = s_ana.create_document("doc", text="v1").doc
            h_ben = ben.session().open(doc)
            assert h_ben.text() == "v1"

            # Sever ben's link without a goodbye, then edit past him.
            ben._sock.close()
            ben._sock = None
            s_ana.insert(doc, 2, " v2")
            old_session = ben.session_id
            ben.reconnect()
            assert ben.reconnects == 1
            assert ben.session_id != old_session
            assert h_ben.text() == "v1 v2"
            # The healed replica keeps tracking the delta lane.
            s_ana.insert(doc, 5, " v3")
            wait_until(lambda: (ben.poll(timeout=0.05) or True)
                       and h_ben.text() == "v1 v2 v3")
        finally:
            ana.close()
            ben.close()


class TestMixedTopology:
    def test_in_process_commits_reach_wire_clients(self, collab, thread):
        """The call_soon_threadsafe fan-out leg: a local (in-process)
        editing session shares the server with socket clients."""
        client = NetworkClient("127.0.0.1", thread.port, "ana")
        try:
            local = collab.connect("ben")
            doc = local.create_document("mixed", text="local").doc
            handle = client.session().open(doc)
            local.insert(doc, 5, " says hi")
            wait_until(lambda: (client.poll(timeout=0.05) or True)
                       and handle.text() == "local says hi")
        finally:
            client.close()

    def test_wire_commits_reach_in_process_handles(self, collab, thread):
        client = NetworkClient("127.0.0.1", thread.port, "ana")
        try:
            session = client.session()
            doc = session.create_document("mixed").doc
            local = collab.connect("ben")
            local_handle = local.open(doc)
            session.insert(doc, 0, "wire")
            # In-process handles splice synchronously on commit: the
            # RPC's ACK means the text is already visible locally.
            assert local_handle.text() == "wire"
        finally:
            client.close()


class TestBackpressure:
    def test_slow_consumer_is_shed_not_buffered(self, collab):
        """A victim that stops reading must be aborted once its bounded
        send queue overflows — the server never buffers unboundedly and
        healthy neighbours keep full service."""
        with ServerThread(collab, send_queue=4) as t:
            ana = NetworkClient("127.0.0.1", t.port, "ana")
            victim = NetworkClient("127.0.0.1", t.port, "ben")
            try:
                s_ana = ana.session()
                doc = s_ana.create_document("flood").doc
                victim.session().open(doc)
                # Shrink the victim's receive window so the kernel
                # can't soak up the flood on the server's behalf.
                victim._sock.setsockopt(socket.SOL_SOCKET,
                                        socket.SO_RCVBUF, 4096)
                payload = "y" * 2048
                deadline = monotonic() + SETTLE_SECONDS
                while True:
                    s_ana.insert(doc, 0, payload)
                    stats = ana.server_stats()["net"]
                    if stats["backpressure_closes"] >= 1:
                        break
                    assert monotonic() < deadline, \
                        "flood never triggered a shed"
                # The victim was aborted; the writer was never blocked.
                assert ana.ping() < SETTLE_SECONDS
                with pytest.raises(NetError):
                    deadline = monotonic() + SETTLE_SECONDS
                    while True:
                        victim.ping()
                        assert monotonic() < deadline, \
                            "victim connection survived the shed"
            finally:
                ana.close()
                victim.close()


class TestLifecycle:
    def test_ephemeral_port_allocation(self, collab):
        with ServerThread(collab) as a, ServerThread(collab) as b:
            assert a.port != b.port
            assert a.port > 0

    def test_bind_failure_surfaces_in_start(self, collab):
        with ServerThread(collab) as running:
            clash = ServerThread(collab, port=running.port)
            with pytest.raises(NetError, match="failed to start"):
                clash.start()

    def test_stop_disconnects_sessions(self, collab):
        t = ServerThread(collab).start()
        client = NetworkClient("127.0.0.1", t.port, "ana")
        try:
            assert len(collab.sessions()) == 1
            t.stop()
            wait_until(lambda: len(collab.sessions()) == 0)
        finally:
            client.close()

    def test_net_metrics_land_in_the_engine_snapshot(self, collab, thread):
        client = NetworkClient("127.0.0.1", thread.port, "ana")
        try:
            session = client.session()
            doc = session.create_document("doc").doc
            session.insert(doc, 0, "x")
            client.ping()
        finally:
            client.close()
        snapshot = collab.db.metrics_snapshot()
        assert snapshot["net.connects"]["value"] >= 1
        assert snapshot["net.ops"]["value"] >= 2
        assert snapshot["net.op_seconds"]["count"] >= 2
        from repro.obs.catalogue import unknown_names
        assert unknown_names(snapshot) == []
