"""Crash/concurrency torture: recovery equivalence over seeded schedules.

Every test here is driven by integer seeds.  One seed deterministically
generates the fault plan (which crash point, which hit, torn or power
lost), the workload (every operation), and — for the collab tests — the
typist interleaving.  A failure therefore reproduces exactly:

    pytest tests/test_crash_torture.py -k seed17
    pytest tests/test_crash_torture.py --torture-schedules 500   # nightly

The ``crash_seed`` fixture is parameterised over ``--torture-schedules``
(default 25).  The ``*_floor`` test additionally pins one hundred fixed
seeds so the acceptance bar — recovery equivalence on >= 100 distinct
crash schedules — holds no matter how the option is set.

Properties under torture:

* **Recovery equivalence** (engine): the database recovered from the
  surviving WAL file equals the committed prefix applied to an
  independent plain-dict model (:mod:`repro.faults.harness`).
* **Convergence** (collab): once notification delivery drains, every
  session's replica equals the shared plain-text model, and the document
  recovered from the WAL matches one of the two legal outcomes around an
  in-flight operation (the WAL says which).
"""

from __future__ import annotations

import random

import pytest

from repro.collab import CollaborationServer
from repro.db import Database, column, recover_file
from repro.db.wal import WriteAheadLog, committed_txn_ids
from repro.faults import (
    CrashSignal,
    DeterministicScheduler,
    FaultInjector,
    FaultPlan,
    check_recovery_equivalence,
    run_engine_schedule,
)
from repro.text import DocumentStore
from repro.workload import ModelTypist, SharedText

pytestmark = [
    pytest.mark.torture,
    # Torn tails are the *point* of many schedules; the recovery-side
    # warning is expected noise here.
    pytest.mark.filterwarnings("ignore:skipping torn trailing WAL record"),
]


# ---------------------------------------------------------------------------
# Engine-level crash schedules
# ---------------------------------------------------------------------------

class TestEngineCrashTorture:
    def test_recovery_equivalence(self, crash_seed, tmp_path):
        outcome = run_engine_schedule(crash_seed,
                                      str(tmp_path / "wal.jsonl"))
        recovered = check_recovery_equivalence(outcome)
        # The recovered engine is live, not a husk: it accepts new work.
        if recovered.has_table("kv"):
            rowid = recovered.insert("kv", {"k": f"post-{crash_seed}",
                                            "v": -1})
            assert recovered.get("kv", rowid)["v"] == -1

    def test_recovery_equivalence_with_lock_faults(self, crash_seed,
                                                   tmp_path):
        # Same property with injected lock timeouts in the mix: a txn the
        # injector kills is just another uncommitted txn to recovery.
        plan = FaultPlan.random(crash_seed + 500_000, with_locks=True)
        outcome = run_engine_schedule(crash_seed + 500_000,
                                      str(tmp_path / "wal.jsonl"),
                                      plan=plan)
        check_recovery_equivalence(outcome)

    def test_recovery_equivalence_floor_100_schedules(self, tmp_path):
        """The acceptance bar: >= 100 distinct seeded crash schedules.

        Runs regardless of ``--torture-schedules`` so the guarantee can't
        be configured away.  Each failure message carries its seed.
        """
        crashed = 0
        points = set()
        for seed in range(1000, 1100):
            outcome = run_engine_schedule(seed,
                                          str(tmp_path / f"wal-{seed}.jsonl"))
            check_recovery_equivalence(outcome)
            if outcome.crashed:
                crashed += 1
                points.add(outcome.crash_point)
        # The schedule space must actually exercise crashes, not dodge
        # them, and across several distinct crash points.
        assert crashed >= 60
        assert len(points) >= 4


# ---------------------------------------------------------------------------
# Snapshot readers held open across crash points
# ---------------------------------------------------------------------------

def _run_snapshot_schedule(seed: int, wal_path: str, plan: FaultPlan):
    """Seeded crashing workload with a snapshot reader pinned mid-run.

    Commits a few transactions with faults disarmed, pins a snapshot,
    freezes its expected view, then keeps committing (and possibly
    crashing).  Returns everything the assertions need.
    """
    faults = FaultInjector(plan, armed=False)
    db = Database("torture", wal_path=wal_path, faults=faults)
    rng = random.Random(seed * 6151 + 3)
    db.create_table("kv", [column("k", "str"), column("v", "int")], key="k")
    live: dict[int, dict] = {}
    attempts: dict[int, list] = {}

    def one_txn(t: int) -> None:
        txn = db.begin()
        ops: list = []
        attempts[txn.txn_id] = ops
        touched: set[int] = set()
        for j in range(rng.randint(1, 4)):
            candidates = [r for r in live if r not in touched]
            kind = rng.choices(
                ("insert", "update", "delete"),
                weights=(5, 3 if candidates else 0,
                         2 if candidates else 0))[0]
            if kind == "insert":
                row = {"k": f"s{seed}-t{t}-o{j}", "v": rng.randrange(1000)}
                rowid = txn.insert("kv", row)
                ops.append(("put", rowid, row))
            elif kind == "update":
                rowid = rng.choice(candidates)
                row = dict(live[rowid], v=rng.randrange(1000))
                txn.update("kv", rowid, {"v": row["v"]})
                ops.append(("put", rowid, row))
            else:
                rowid = rng.choice(candidates)
                txn.delete("kv", rowid)
                ops.append(("del", rowid, None))
            touched.add(rowid)
        txn.commit()
        for op, rowid, row in ops:
            if op == "put":
                live[rowid] = row
            else:
                live.pop(rowid, None)

    for t in range(6):                  # fixture prefix, no faults yet
        one_txn(t)
    snap = db.begin(read_only=True)
    frozen = {r.rowid: dict(r) for r in snap.query("kv").run()}
    assert frozen == live

    faults.arm()
    crashed = False
    try:
        for t in range(6, 30):
            if t % 7 == 0:
                db.checkpoint()
            one_txn(t)
            # The reader keeps reading between writers' transactions;
            # every read must return the pinned state.
            assert {r.rowid: dict(r)
                    for r in snap.query("kv").run()} == frozen, \
                f"seed {seed}: snapshot drifted mid-schedule"
    except CrashSignal:
        crashed = True
    return {
        "db": db, "snap": snap, "frozen": frozen, "attempts": attempts,
        "crashed": crashed, "faults": faults, "wal_path": wal_path,
        "seed": seed,
    }


class TestSnapshotCrashTorture:
    """MVCC pins vs crashes: frozen views and collapsed chains."""

    #: The two points that stress the snapshot machinery hardest: a
    #: commit record written but its group barrier never entered, and a
    #: crash while the checkpoint walks committed state.
    POINTS = ("wal.after_write", "checkpoint.mid_snapshot")

    def test_snapshot_frozen_across_crash(self, crash_seed, tmp_path):
        """The pinned view survives the crash signal itself.

        Even when the crash interrupts a commit half-applied, the
        interrupted transaction's versions are stamped with a commit LSN
        above the pin, so the reader held open across the crash must
        still see exactly its frozen view — uncommitted or torn state
        is never visible through a snapshot.
        """
        point = self.POINTS[crash_seed % len(self.POINTS)]
        plan = FaultPlan.crash_once(
            point, hit=1 + crash_seed % 4,
            tear=0.1 + (crash_seed % 9) / 10.0,
            power_loss=crash_seed % 3 == 0)
        run = _run_snapshot_schedule(crash_seed,
                                     str(tmp_path / "snap.jsonl"), plan)
        snap, frozen, seed = run["snap"], run["frozen"], run["seed"]
        view = {r.rowid: dict(r) for r in snap.query("kv").run()}
        assert view == frozen, (
            f"seed {seed}: snapshot view changed across crash "
            f"(crashed={run['crashed']}, "
            f"point={run['faults'].crash_point_fired})")
        for rowid, row in frozen.items():
            assert snap.get("kv", rowid) == row, f"seed {seed}"

    def test_recovery_equivalence_with_collapsed_chains(self, crash_seed,
                                                        tmp_path):
        """Recovery ignores version chains and still lands on the
        committed prefix; the recovered engine starts with zero live
        versions (chains collapse to a single committed image)."""
        plan = FaultPlan.random(crash_seed + 900_000)
        run = _run_snapshot_schedule(crash_seed + 900_000,
                                     str(tmp_path / "snapc.jsonl"), plan)
        if not run["crashed"]:
            run["snap"].commit()
            run["db"].close()
        # Ground truth from the surviving file, exactly as the engine
        # torture does it.
        records = WriteAheadLog.load_file(run["wal_path"])
        committed = committed_txn_ids(records)
        expected: dict[int, dict] = {}
        for txn_id in sorted(run["attempts"]):
            if txn_id not in committed:
                continue
            for op, rowid, row in run["attempts"][txn_id]:
                if op == "put":
                    expected[rowid] = row
                else:
                    expected.pop(rowid, None)
        recovered = recover_file(run["wal_path"])
        table = recovered.table("kv")
        got = {rowid: table.schema.row_dict(row)
               for rowid, row in table.committed_items()}
        assert got == expected, f"seed {run['seed']}"
        assert recovered.live_versions() == 0, (
            f"seed {run['seed']}: version chains survived recovery")
        # And the recovered engine serves fresh snapshots immediately.
        with recovered.snapshot() as post:
            assert {r.rowid: dict(r)
                    for r in post.query("kv").run()} == expected


# ---------------------------------------------------------------------------
# Collab-level torture: seeded typist interleavings
# ---------------------------------------------------------------------------

USERS = ("ana", "ben", "cleo")


def _build_party(wal_path: str, faults: FaultInjector):
    """Server + three sessions on one shared document (fixture phase)."""
    server = CollaborationServer(node="torture", wal_path=wal_path,
                                 faults=faults)
    for user in USERS:
        server.register_user(user)
    sessions = [server.connect(user) for user in USERS]
    handle = sessions[0].create_document("torture-doc",
                                         text="the quick brown fox. ")
    for session in sessions[1:]:
        session.open(handle.doc)
    return server, sessions, handle


def _run_typist_schedule(seed: int, wal_path: str, plan: FaultPlan,
                         n_steps: int = 40):
    """Drive one seeded multi-typist schedule; returns the evidence."""
    faults = FaultInjector(plan, armed=False)
    server, sessions, handle = _build_party(wal_path, faults)
    model = SharedText(handle.text())
    typists = [
        ModelTypist(session, handle.doc, seed=seed * 100 + i, model=model)
        for i, session in enumerate(sessions)
    ]
    sched = DeterministicScheduler(seed)
    for user, typist in zip(USERS, typists):
        sched.add_actor(user, typist.step)

    setup_committed = committed_txn_ids(server.db.wal.records())
    faults.arm()                       # fixture built; open the blast radius
    crashed = False
    try:
        sched.run(n_steps)
    except CrashSignal:
        crashed = True
    return {
        "server": server, "sessions": sessions, "handle": handle,
        "model": model, "typists": typists, "sched": sched,
        "setup_committed": setup_committed, "crashed": crashed,
        "seed": seed, "wal_path": wal_path,
    }


def _recovered_text(run) -> tuple[str, "DocumentStore"]:
    recovered = recover_file(run["wal_path"])
    store = DocumentStore(recovered)
    clone = store.handle(run["handle"].doc)
    assert clone.check_integrity() == [], f"seed {run['seed']}"
    return clone.text(), store


class TestCollabCrashTorture:
    def test_typist_schedule_crash_and_recover(self, crash_seed, tmp_path):
        """Crash a seeded 3-typist interleaving; recovery must land on one
        of the two legal texts, and the surviving WAL says which."""
        plan = FaultPlan.random(crash_seed, with_delivery=True)
        run = _run_typist_schedule(crash_seed,
                                   str(tmp_path / "collab.jsonl"), plan)
        seed = crash_seed
        model = run["model"]
        ops_done = sum(t.ops_done for t in run["typists"])

        if not run["crashed"]:
            # Plan never triggered (e.g. a checkpoint point with no
            # checkpoints): behave exactly like a healthy run.
            server = run["server"]
            server.delivery.drain()
            for session in run["sessions"]:
                assert session.handle(run["handle"].doc).text() == model.text, \
                    f"seed {seed}: replica diverged"
            # One editing operation == one transaction: the mapping the
            # crashed branch relies on to count in-flight commits.
            committed_now = committed_txn_ids(server.db.wal.records())
            assert len(committed_now) - len(run["setup_committed"]) == ops_done
            server.db.close()
            text, __ = _recovered_text(run)
            assert text == model.text, f"seed {seed}"
            return

        # Crashed mid-step: exactly one typist has an op in flight.
        inflight = [t.pending for t in run["typists"] if t.pending is not None]
        assert len(inflight) == 1, f"seed {seed}: trace {run['sched'].trace}"
        file_committed = committed_txn_ids(
            WriteAheadLog.load_file(run["wal_path"]))
        n_new = len(file_committed - run["setup_committed"])
        text, __ = _recovered_text(run)
        if n_new == ops_done:
            # The in-flight op's COMMIT never became durable.
            assert text == model.text, (
                f"seed {seed}: recovered text != model without in-flight op "
                f"(crash at {run['server'].faults.crash_point_fired})"
            )
        elif n_new == ops_done + 1:
            # Crash after the commit point (e.g. txn.post_commit): the
            # in-flight op is durable and recovery must surface it.
            assert text == model.applied(inflight[0]), (
                f"seed {seed}: recovered text != model + in-flight op "
                f"(crash at {run['server'].faults.crash_point_fired})"
            )
        else:
            pytest.fail(
                f"seed {seed}: {n_new} new committed txns for {ops_done} "
                f"completed ops — the 1-op-1-txn invariant broke"
            )

    def test_delivery_faults_converge_after_drain(self, crash_seed, tmp_path):
        """No crashes — only held/reordered notifications.  After drain,
        inboxes are complete and every replica equals the model."""
        plan = FaultPlan.delivery_only(crash_seed)
        run = _run_typist_schedule(crash_seed,
                                   str(tmp_path / "delivery.jsonl"), plan,
                                   n_steps=30)
        assert not run["crashed"]
        server = run["server"]
        seed = crash_seed
        server.delivery.drain()
        assert server.delivery.pending == 0

        # Convergence: every replica, the shared model, a refreshed view,
        # and the recovered document all agree.
        doc = run["handle"].doc
        model_text = run["model"].text
        for session in run["sessions"]:
            handle = session.handle(doc)
            assert handle.text() == model_text, f"seed {seed}"
            handle.refresh()
            assert handle.text() == model_text, f"seed {seed} post-refresh"
        # Inboxes: drained delivery lost nothing — the union of received
        # sequence numbers covers every notification the server sent.
        received = set()
        for session in run["sessions"]:
            received.update(n.seq for n in session.inbox)
        sent = server.stats["notifications"]
        held = server.delivery.stats["held"]
        assert server.delivery.stats["delivered"] >= held
        assert len(received) > 0 and sent > 0
        server.db.close()
        text, __ = _recovered_text(run)
        assert text == model_text, f"seed {seed}"
