"""Crash/concurrency torture: recovery equivalence over seeded schedules.

Every test here is driven by integer seeds.  One seed deterministically
generates the fault plan (which crash point, which hit, torn or power
lost), the workload (every operation), and — for the collab tests — the
typist interleaving.  A failure therefore reproduces exactly:

    pytest tests/test_crash_torture.py -k seed17
    pytest tests/test_crash_torture.py --torture-schedules 500   # nightly

The ``crash_seed`` fixture is parameterised over ``--torture-schedules``
(default 25).  The ``*_floor`` test additionally pins one hundred fixed
seeds so the acceptance bar — recovery equivalence on >= 100 distinct
crash schedules — holds no matter how the option is set.

Properties under torture:

* **Recovery equivalence** (engine): the database recovered from the
  surviving WAL file equals the committed prefix applied to an
  independent plain-dict model (:mod:`repro.faults.harness`).
* **Convergence** (collab): once notification delivery drains, every
  session's replica equals the shared plain-text model, and the document
  recovered from the WAL matches one of the two legal outcomes around an
  in-flight operation (the WAL says which).
"""

from __future__ import annotations

import pytest

from repro.collab import CollaborationServer
from repro.db import recover_file
from repro.db.wal import WriteAheadLog, committed_txn_ids
from repro.faults import (
    CrashSignal,
    DeterministicScheduler,
    FaultInjector,
    FaultPlan,
    check_recovery_equivalence,
    run_engine_schedule,
)
from repro.text import DocumentStore
from repro.workload import ModelTypist, SharedText

pytestmark = [
    pytest.mark.torture,
    # Torn tails are the *point* of many schedules; the recovery-side
    # warning is expected noise here.
    pytest.mark.filterwarnings("ignore:skipping torn trailing WAL record"),
]


# ---------------------------------------------------------------------------
# Engine-level crash schedules
# ---------------------------------------------------------------------------

class TestEngineCrashTorture:
    def test_recovery_equivalence(self, crash_seed, tmp_path):
        outcome = run_engine_schedule(crash_seed,
                                      str(tmp_path / "wal.jsonl"))
        recovered = check_recovery_equivalence(outcome)
        # The recovered engine is live, not a husk: it accepts new work.
        if recovered.has_table("kv"):
            rowid = recovered.insert("kv", {"k": f"post-{crash_seed}",
                                            "v": -1})
            assert recovered.get("kv", rowid)["v"] == -1

    def test_recovery_equivalence_with_lock_faults(self, crash_seed,
                                                   tmp_path):
        # Same property with injected lock timeouts in the mix: a txn the
        # injector kills is just another uncommitted txn to recovery.
        plan = FaultPlan.random(crash_seed + 500_000, with_locks=True)
        outcome = run_engine_schedule(crash_seed + 500_000,
                                      str(tmp_path / "wal.jsonl"),
                                      plan=plan)
        check_recovery_equivalence(outcome)

    def test_recovery_equivalence_floor_100_schedules(self, tmp_path):
        """The acceptance bar: >= 100 distinct seeded crash schedules.

        Runs regardless of ``--torture-schedules`` so the guarantee can't
        be configured away.  Each failure message carries its seed.
        """
        crashed = 0
        points = set()
        for seed in range(1000, 1100):
            outcome = run_engine_schedule(seed,
                                          str(tmp_path / f"wal-{seed}.jsonl"))
            check_recovery_equivalence(outcome)
            if outcome.crashed:
                crashed += 1
                points.add(outcome.crash_point)
        # The schedule space must actually exercise crashes, not dodge
        # them, and across several distinct crash points.
        assert crashed >= 60
        assert len(points) >= 4


# ---------------------------------------------------------------------------
# Collab-level torture: seeded typist interleavings
# ---------------------------------------------------------------------------

USERS = ("ana", "ben", "cleo")


def _build_party(wal_path: str, faults: FaultInjector):
    """Server + three sessions on one shared document (fixture phase)."""
    server = CollaborationServer(node="torture", wal_path=wal_path,
                                 faults=faults)
    for user in USERS:
        server.register_user(user)
    sessions = [server.connect(user) for user in USERS]
    handle = sessions[0].create_document("torture-doc",
                                         text="the quick brown fox. ")
    for session in sessions[1:]:
        session.open(handle.doc)
    return server, sessions, handle


def _run_typist_schedule(seed: int, wal_path: str, plan: FaultPlan,
                         n_steps: int = 40):
    """Drive one seeded multi-typist schedule; returns the evidence."""
    faults = FaultInjector(plan, armed=False)
    server, sessions, handle = _build_party(wal_path, faults)
    model = SharedText(handle.text())
    typists = [
        ModelTypist(session, handle.doc, seed=seed * 100 + i, model=model)
        for i, session in enumerate(sessions)
    ]
    sched = DeterministicScheduler(seed)
    for user, typist in zip(USERS, typists):
        sched.add_actor(user, typist.step)

    setup_committed = committed_txn_ids(server.db.wal.records())
    faults.arm()                       # fixture built; open the blast radius
    crashed = False
    try:
        sched.run(n_steps)
    except CrashSignal:
        crashed = True
    return {
        "server": server, "sessions": sessions, "handle": handle,
        "model": model, "typists": typists, "sched": sched,
        "setup_committed": setup_committed, "crashed": crashed,
        "seed": seed, "wal_path": wal_path,
    }


def _recovered_text(run) -> tuple[str, "DocumentStore"]:
    recovered = recover_file(run["wal_path"])
    store = DocumentStore(recovered)
    clone = store.handle(run["handle"].doc)
    assert clone.check_integrity() == [], f"seed {run['seed']}"
    return clone.text(), store


class TestCollabCrashTorture:
    def test_typist_schedule_crash_and_recover(self, crash_seed, tmp_path):
        """Crash a seeded 3-typist interleaving; recovery must land on one
        of the two legal texts, and the surviving WAL says which."""
        plan = FaultPlan.random(crash_seed, with_delivery=True)
        run = _run_typist_schedule(crash_seed,
                                   str(tmp_path / "collab.jsonl"), plan)
        seed = crash_seed
        model = run["model"]
        ops_done = sum(t.ops_done for t in run["typists"])

        if not run["crashed"]:
            # Plan never triggered (e.g. a checkpoint point with no
            # checkpoints): behave exactly like a healthy run.
            server = run["server"]
            server.delivery.drain()
            for session in run["sessions"]:
                assert session.handle(run["handle"].doc).text() == model.text, \
                    f"seed {seed}: replica diverged"
            # One editing operation == one transaction: the mapping the
            # crashed branch relies on to count in-flight commits.
            committed_now = committed_txn_ids(server.db.wal.records())
            assert len(committed_now) - len(run["setup_committed"]) == ops_done
            server.db.close()
            text, __ = _recovered_text(run)
            assert text == model.text, f"seed {seed}"
            return

        # Crashed mid-step: exactly one typist has an op in flight.
        inflight = [t.pending for t in run["typists"] if t.pending is not None]
        assert len(inflight) == 1, f"seed {seed}: trace {run['sched'].trace}"
        file_committed = committed_txn_ids(
            WriteAheadLog.load_file(run["wal_path"]))
        n_new = len(file_committed - run["setup_committed"])
        text, __ = _recovered_text(run)
        if n_new == ops_done:
            # The in-flight op's COMMIT never became durable.
            assert text == model.text, (
                f"seed {seed}: recovered text != model without in-flight op "
                f"(crash at {run['server'].faults.crash_point_fired})"
            )
        elif n_new == ops_done + 1:
            # Crash after the commit point (e.g. txn.post_commit): the
            # in-flight op is durable and recovery must surface it.
            assert text == model.applied(inflight[0]), (
                f"seed {seed}: recovered text != model + in-flight op "
                f"(crash at {run['server'].faults.crash_point_fired})"
            )
        else:
            pytest.fail(
                f"seed {seed}: {n_new} new committed txns for {ops_done} "
                f"completed ops — the 1-op-1-txn invariant broke"
            )

    def test_delivery_faults_converge_after_drain(self, crash_seed, tmp_path):
        """No crashes — only held/reordered notifications.  After drain,
        inboxes are complete and every replica equals the model."""
        plan = FaultPlan.delivery_only(crash_seed)
        run = _run_typist_schedule(crash_seed,
                                   str(tmp_path / "delivery.jsonl"), plan,
                                   n_steps=30)
        assert not run["crashed"]
        server = run["server"]
        seed = crash_seed
        server.delivery.drain()
        assert server.delivery.pending == 0

        # Convergence: every replica, the shared model, a refreshed view,
        # and the recovered document all agree.
        doc = run["handle"].doc
        model_text = run["model"].text
        for session in run["sessions"]:
            handle = session.handle(doc)
            assert handle.text() == model_text, f"seed {seed}"
            handle.refresh()
            assert handle.text() == model_text, f"seed {seed} post-refresh"
        # Inboxes: drained delivery lost nothing — the union of received
        # sequence numbers covers every notification the server sent.
        received = set()
        for session in run["sessions"]:
            received.update(n.seq for n in session.inbox)
        sent = server.stats["notifications"]
        held = server.delivery.stats["held"]
        assert server.delivery.stats["delivered"] >= held
        assert len(received) > 0 and sent > 0
        server.db.close()
        text, __ = _recovered_text(run)
        assert text == model_text, f"seed {seed}"
