"""In-process replication: tailers, idempotent apply, resume, promotion.

The follower engine's contract is *exactly-once effect from at-least-once
delivery*: segments may be redelivered (reconnects, restarts, paranoid
tailers re-reading the file from zero) and the applier's LSN cursor must
drop every duplicate with zero side effects.  The property test drives
seeded redelivery schedules — random re-send offsets and segment sizes —
and asserts applied state, ``applied_lsn`` and the ``repl.apply_lag_lsn``
gauge all end exactly where single-delivery would leave them.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db import Database, column
from repro.errors import ReplicationError
from repro.repl import FollowerEngine, WalFileTailer, WalTailer

TABLE = "notes"


def make_leader(wal_path: str, n_txns: int = 20) -> Database:
    db = Database("leader", wal_path=wal_path)
    db.create_table(TABLE, [column("k", "str"), column("v", "int")],
                    key="k")
    for t in range(n_txns):
        txn = db.begin()
        txn.insert(TABLE, {"k": f"t{t}", "v": t})
        if t and t % 3 == 0:
            txn.update(TABLE, t, {"v": t * 10})
        txn.commit()
    return db


def rows(db: Database) -> dict:
    if not db.has_table(TABLE):
        return {}
    table = db.table(TABLE)
    return {rowid: table.schema.row_dict(row)
            for rowid, row in table.committed_items()}


class TestTailerConvergence:
    def test_live_tailer_converges(self, tmp_path):
        leader = make_leader(str(tmp_path / "leader.wal"))
        follower = FollowerEngine(node="replica")
        tailer = WalTailer(leader.wal, follower)
        applied = tailer.poll()
        assert applied == leader.wal.durable_lsn
        assert tailer.caught_up()
        assert follower.lag_lsn == 0
        assert rows(follower.db) == rows(leader)
        leader.close(); follower.close()

    def test_file_tailer_converges_incrementally(self, tmp_path):
        path = str(tmp_path / "leader.wal")
        leader = make_leader(path, n_txns=5)
        follower = FollowerEngine(node="replica")
        tailer = WalFileTailer(path, follower)
        tailer.drain()
        first = follower.applied_lsn
        assert first == leader.wal.durable_lsn
        # More leader commits land; the next poll ships only the delta.
        txn = leader.begin()
        txn.insert(TABLE, {"k": "late", "v": 99})
        txn.commit()
        tailer.drain()
        assert follower.applied_lsn > first
        assert rows(follower.db) == rows(leader)
        leader.close(); follower.close()

    def test_replica_snapshot_reads_while_applying(self, tmp_path):
        leader = make_leader(str(tmp_path / "leader.wal"), n_txns=10)
        follower = FollowerEngine(node="replica")
        tailer = WalTailer(leader.wal, follower, batch=8)
        tailer.poll()
        # A pinned snapshot on the replica stays consistent while new
        # segments keep applying underneath it.
        with follower.db.snapshot() as snap:
            before = snap.query(TABLE).count()
            txn = leader.begin()
            txn.insert(TABLE, {"k": "while-pinned", "v": 1})
            txn.commit()
            tailer.poll()
            assert snap.query(TABLE).count() == before
        with follower.db.snapshot() as snap:
            assert snap.query(TABLE).count() == before + 1
        leader.close(); follower.close()

    def test_lag_gauge_tracks_leader_tail(self, tmp_path):
        leader = make_leader(str(tmp_path / "leader.wal"), n_txns=4)
        follower = FollowerEngine(node="replica")
        follower.note_leader_lsn(leader.wal.durable_lsn)
        assert follower.lag_lsn == leader.wal.durable_lsn
        gauge = follower.db.obs.registry.snapshot()["repl.apply_lag_lsn"]
        assert gauge["value"] == follower.lag_lsn
        WalTailer(leader.wal, follower).poll()
        assert follower.lag_lsn == 0
        leader.close(); follower.close()


class TestIdempotence:
    def test_redelivered_segment_is_a_no_op(self, tmp_path):
        leader = make_leader(str(tmp_path / "leader.wal"))
        follower = FollowerEngine(node="replica")
        records = leader.wal.records_from(1)
        follower.apply_records(records, leader_lsn=records[-1].lsn)
        state = rows(follower.db)
        cursor = follower.applied_lsn
        counted = follower.status()["records_applied"]
        # The whole stream again, then a mid-stream slice: both dropped.
        assert follower.apply_records(records) == 0
        assert follower.apply_records(records[3:9]) == 0
        assert follower.applied_lsn == cursor
        assert follower.status()["records_applied"] == counted
        assert rows(follower.db) == state
        leader.close(); follower.close()

    @settings(max_examples=30, deadline=None)
    @given(schedule=st.lists(
        st.tuples(st.integers(min_value=0, max_value=30),
                  st.integers(min_value=1, max_value=40)),
        min_size=1, max_size=25))
    def test_seeded_redelivery_schedules(self, tmp_path_factory, schedule):
        """Random (rewind, length) segments must converge exactly once.

        Each step rewinds the send cursor up to ``rewind`` records back
        (redelivery!) and ships ``length`` records from there — always a
        contiguous extension or pure overlap, as a resuming subscriber
        would produce.  Whatever the schedule, the end state must equal
        plain single-delivery and the lag gauge must read true.
        """
        wal_dir = tmp_path_factory.mktemp("redelivery")
        leader = make_leader(str(wal_dir / "leader.wal"))
        reference = FollowerEngine(node="reference")
        records = leader.wal.records_from(1)
        reference.apply_records(records, leader_lsn=records[-1].lsn)

        follower = FollowerEngine(node="replica")
        for rewind, length in schedule:
            start = max(1, follower.applied_lsn + 1 - rewind)
            segment = records[start - 1:start - 1 + length]
            if segment:
                follower.apply_records(segment,
                                       leader_lsn=segment[-1].lsn)
        # Finish the stream, then redeliver everything once more.
        tail = records[follower.applied_lsn:]
        if tail:
            follower.apply_records(tail, leader_lsn=records[-1].lsn)
        state = rows(follower.db)
        cursor = follower.applied_lsn
        follower.apply_records(records, leader_lsn=records[-1].lsn)

        assert follower.applied_lsn == cursor == reference.applied_lsn
        assert rows(follower.db) == state == rows(reference.db)
        snapshot = follower.db.obs.registry.snapshot()
        assert snapshot["repl.apply_lag_lsn"]["value"] == 0
        assert follower.status()["records_applied"] \
            == reference.status()["records_applied"]
        leader.close(); follower.close(); reference.close()

    def test_gap_in_the_stream_raises(self, tmp_path):
        leader = make_leader(str(tmp_path / "leader.wal"))
        follower = FollowerEngine(node="replica")
        records = leader.wal.records_from(1)
        follower.apply_records(records[:4])
        with pytest.raises(ReplicationError):
            follower.apply_records(records[6:])
        leader.close(); follower.close()


class TestRestartResume:
    def test_resume_from_local_mirror(self, tmp_path):
        leader = make_leader(str(tmp_path / "leader.wal"))
        mirror = str(tmp_path / "follower.wal")
        records = leader.wal.records_from(1)
        half = len(records) // 2
        follower = FollowerEngine(mirror, node="replica")
        follower.apply_records(records[:half])
        applied = follower.applied_lsn
        follower.close()
        # Restarted over its own mirror: the cursor survives, and the
        # stream resumes mid-file without re-applying the prefix.
        follower = FollowerEngine(mirror, node="replica")
        assert follower.applied_lsn == applied
        follower.apply_records(records[applied:],
                               leader_lsn=records[-1].lsn)
        assert rows(follower.db) == rows(leader)
        leader.close(); follower.close()

    def test_torn_mirror_tail_is_truncated(self, tmp_path):
        leader = make_leader(str(tmp_path / "leader.wal"))
        mirror = str(tmp_path / "follower.wal")
        records = leader.wal.records_from(1)
        follower = FollowerEngine(mirror, node="replica")
        follower.apply_records(records[:8])
        applied = follower.applied_lsn
        follower.close()
        with open(mirror, "ab") as raw:
            raw.write(b'{"lsn": 9999, "type": "CO')  # crash mid-append
        follower = FollowerEngine(mirror, node="replica")
        assert follower.applied_lsn == applied
        registry = follower.db.obs.registry.snapshot()
        assert registry["wal.torn_tail_recoveries"]["value"] == 1
        # The truncated mirror must accept the stream where it left off.
        follower.apply_records(records[applied:],
                               leader_lsn=records[-1].lsn)
        assert rows(follower.db) == rows(leader)
        leader.close(); follower.close()


class TestPromotion:
    def test_promoted_follower_is_writable(self, tmp_path):
        leader = make_leader(str(tmp_path / "leader.wal"))
        follower = FollowerEngine(node="replica")
        WalTailer(leader.wal, follower).poll()
        db = follower.promote()
        assert follower.promoted
        txn = db.begin()
        txn.insert(TABLE, {"k": "after-failover", "v": 1})
        txn.commit()
        assert db.wal.last_lsn() > leader.wal.last_lsn()
        snapshot = db.obs.registry.snapshot()
        assert snapshot["repl.promotions"]["value"] == 1
        leader.close(); follower.close()

    def test_promotion_drops_uncommitted_buffers(self, tmp_path):
        leader = make_leader(str(tmp_path / "leader.wal"), n_txns=5)
        # An open transaction on the leader: BEGIN/DML shipped, no
        # COMMIT.  A sibling commit's group fsync makes the dangling
        # records durable, so the tailer ships them.
        dangling = leader.begin()
        dangling.insert(TABLE, {"k": "never-committed", "v": -1})
        sibling = leader.begin()
        sibling.insert(TABLE, {"k": "sibling", "v": 0})
        sibling.commit()
        follower = FollowerEngine(node="replica")
        WalTailer(leader.wal, follower).poll()
        assert follower.status()["pending_txns"] == 1
        db = follower.promote()
        assert follower.status()["pending_txns"] == 0
        assert all(r["k"] != "never-committed" for r in rows(db).values())
        leader.close(); follower.close()

    def test_promoted_follower_rejects_the_stream(self, tmp_path):
        leader = make_leader(str(tmp_path / "leader.wal"), n_txns=3)
        follower = FollowerEngine(node="replica")
        records = leader.wal.records_from(1)
        follower.apply_records(records)
        first = follower.promote()
        assert follower.promote() is first  # idempotent
        with pytest.raises(ReplicationError):
            follower.apply_records(records)
        leader.close(); follower.close()
