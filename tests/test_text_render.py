"""Tests for the Markdown renderer."""

import pytest

from repro.collab import CollaborationServer
from repro.db import Database
from repro.text import (
    DocumentStore,
    NoteManager,
    ObjectManager,
    StructureManager,
    StyleManager,
    export_markdown,
)


@pytest.fixture
def db():
    return Database("t")


@pytest.fixture
def store(db):
    return DocumentStore(db)


class TestMarkdownExport:
    def test_title_and_footer(self, store):
        h = store.create("My Doc", "ana", text="body")
        md = export_markdown(h)
        assert md.startswith("# My Doc\n")
        assert "*ana's document, state: draft, 4 characters.*" in md

    def test_bold_italic_runs(self, db, store):
        styles = StyleManager(db)
        h = store.create("d", "ana", text="plain bold italic")
        bold = styles.define_style("b", {"bold": True}, "ana")
        italic = styles.define_style("i", {"italic": True}, "ana")
        h.apply_style(6, 4, bold, "ana")
        h.apply_style(11, 6, italic, "ana")
        md = export_markdown(h)
        assert "**bold**" in md
        assert "*italic*" in md
        assert "plain " in md

    def test_bold_italic_combined(self, db, store):
        styles = StyleManager(db)
        h = store.create("d", "ana", text="both")
        style = styles.define_style("bi", {"bold": True, "italic": True},
                                    "ana")
        h.apply_style(0, 4, style, "ana")
        assert "***both***" in export_markdown(h)

    def test_heading_level_styles(self, db, store):
        styles = StyleManager(db)
        h = store.create("d", "ana", text="Heading\nbody text")
        heading = styles.define_style("h2", {"heading_level": 2}, "ana")
        h.apply_style(0, 7, heading, "ana")
        md = export_markdown(h)
        assert "\n## Heading\n" in md

    def test_outline_section(self, db, store):
        structure = StructureManager(db)
        h = store.create("d", "ana", text="x")
        sec = structure.add_node(h.doc, "section", "ana", label="Intro")
        structure.add_node(h.doc, "paragraph", "ana", parent=sec)
        md = export_markdown(h)
        assert "## Outline" in md
        assert "- section Intro" in md
        assert "  - paragraph" in md

    def test_no_outline_section_when_unstructured(self, store):
        h = store.create("d", "ana", text="x")
        assert "## Outline" not in export_markdown(h)

    def test_objects_rendered(self, db, store):
        objects = ObjectManager(db)
        h = store.create("d", "ana", text="some body text")
        objects.insert_image(h, 2, "ana", name="fig.png", width=3,
                             height=4, content_ref="assets/fig.png")
        table = objects.insert_table(h, 5, "ana", rows=2, cols=2)
        objects.set_cell(table, 0, 0, "head", "ana")
        objects.set_cell(table, 1, 0, "cell", "ana")
        md = export_markdown(h)
        assert "![fig.png](assets/fig.png) (3x4, at position 2)" in md
        assert "| head |" in md
        assert "| cell |" in md

    def test_notes_rendered(self, db, store):
        notes = NoteManager(db)
        h = store.create("d", "ana", text="needs review")
        notes.add_note(h, 6, "who approved this?", "ben")
        md = export_markdown(h)
        assert "- [ben @6] who approved this?" in md

    def test_resolved_notes_omitted(self, db, store):
        notes = NoteManager(db)
        h = store.create("d", "ana", text="x")
        note = notes.add_note(h, 0, "done already", "ben")
        notes.resolve(note, "ana")
        assert "## Notes" not in export_markdown(h)

    def test_full_document_via_server(self):
        server = CollaborationServer()
        server.register_user("ana")
        session = server.connect("ana")
        handle = session.create_document("full", text="Title\nBody here")
        heading = server.styles.define_style(
            "h1", {"heading_level": 1}, "ana")
        session.apply_style(handle.doc, 0, 5, heading)
        md = export_markdown(handle)
        assert "# full" in md
        assert "# Title" in md
        assert "Body here" in md
