"""Tests for transaction semantics: isolation, atomicity, locking."""

import threading

import pytest

from repro.db import Database, column
from repro.errors import (
    LockTimeoutError,
    RowNotFoundError,
    TransactionStateError,
    UniqueViolation,
)


@pytest.fixture
def db():
    db = Database("t")
    db.create_table("kv", [column("k", "str"), column("v", "int")], key="k")
    return db


class TestLifecycle:
    def test_commit_makes_changes_visible(self, db):
        txn = db.begin()
        rid = txn.insert("kv", {"k": "a", "v": 1})
        assert db.read("kv", rid) is None  # not yet committed
        txn.commit()
        assert db.get("kv", rid) == {"k": "a", "v": 1}

    def test_abort_discards_changes(self, db):
        txn = db.begin()
        rid = txn.insert("kv", {"k": "a", "v": 1})
        txn.abort()
        assert db.read("kv", rid) is None

    def test_context_manager_commits(self, db):
        with db.transaction() as txn:
            rid = txn.insert("kv", {"k": "a", "v": 1})
        assert db.get("kv", rid)["v"] == 1

    def test_context_manager_aborts_on_exception(self, db):
        with pytest.raises(RuntimeError):
            with db.transaction() as txn:
                txn.insert("kv", {"k": "a", "v": 1})
                raise RuntimeError("boom")
        assert db.query("kv").count() == 0

    def test_operations_after_commit_raise(self, db):
        txn = db.begin()
        txn.insert("kv", {"k": "a", "v": 1})
        txn.commit()
        with pytest.raises(TransactionStateError):
            txn.insert("kv", {"k": "b", "v": 2})
        with pytest.raises(TransactionStateError):
            txn.commit()

    def test_stats_track_commits_and_aborts(self, db):
        before = dict(db.stats)
        with db.transaction() as txn:
            txn.insert("kv", {"k": "a", "v": 1})
        txn2 = db.begin()
        txn2.abort()
        assert db.stats["commits"] == before["commits"] + 1
        assert db.stats["aborts"] == before["aborts"] + 1


class TestAtomicity:
    def test_multi_row_commit_is_atomic(self, db):
        with db.transaction() as txn:
            for i in range(5):
                txn.insert("kv", {"k": f"k{i}", "v": i})
        assert db.query("kv").count() == 5

    def test_multi_row_abort_is_atomic(self, db):
        txn = db.begin()
        for i in range(5):
            txn.insert("kv", {"k": f"k{i}", "v": i})
        txn.abort()
        assert db.query("kv").count() == 0

    def test_insert_then_delete_in_one_txn_is_noop(self, db):
        with db.transaction() as txn:
            rid = txn.insert("kv", {"k": "a", "v": 1})
            txn.delete("kv", rid)
        assert db.query("kv").count() == 0

    def test_update_then_delete_commits_as_delete(self, db):
        rid = db.insert("kv", {"k": "a", "v": 1})
        with db.transaction() as txn:
            txn.update("kv", rid, {"v": 2})
            txn.delete("kv", rid)
        assert db.read("kv", rid) is None


class TestIsolation:
    def test_reader_sees_committed_only(self, db):
        rid = db.insert("kv", {"k": "a", "v": 1})
        writer = db.begin()
        writer.update("kv", rid, {"v": 99})
        # Outside reader still sees v=1.
        assert db.get("kv", rid)["v"] == 1
        # The writer sees its own change.
        assert writer.get("kv", rid)["v"] == 99
        writer.commit()
        assert db.get("kv", rid)["v"] == 99

    def test_own_delete_visible_to_self(self, db):
        rid = db.insert("kv", {"k": "a", "v": 1})
        txn = db.begin()
        txn.delete("kv", rid)
        assert txn.read("kv", rid) is None
        assert db.get("kv", rid)["v"] == 1  # others still see it
        txn.commit()

    def test_query_sees_own_pending_insert(self, db):
        txn = db.begin()
        txn.insert("kv", {"k": "a", "v": 1})
        assert txn.query("kv").count() == 1
        assert db.query("kv").count() == 0
        txn.commit()

    def test_update_of_deleted_row_in_txn_raises(self, db):
        rid = db.insert("kv", {"k": "a", "v": 1})
        txn = db.begin()
        txn.delete("kv", rid)
        with pytest.raises(RowNotFoundError):
            txn.update("kv", rid, {"v": 2})
        txn.abort()


class TestLocking:
    def test_write_write_conflict_times_out(self, db):
        rid = db.insert("kv", {"k": "a", "v": 1})
        t1 = db.begin(lock_timeout=0)
        t2 = db.begin(lock_timeout=0)
        t1.update("kv", rid, {"v": 2})
        with pytest.raises(LockTimeoutError):
            t2.update("kv", rid, {"v": 3})
        t1.commit()
        # Now t2 can proceed.
        t2.update("kv", rid, {"v": 3})
        t2.commit()
        assert db.get("kv", rid)["v"] == 3

    def test_locks_released_on_abort(self, db):
        rid = db.insert("kv", {"k": "a", "v": 1})
        t1 = db.begin(lock_timeout=0)
        t1.update("kv", rid, {"v": 2})
        t1.abort()
        t2 = db.begin(lock_timeout=0)
        t2.update("kv", rid, {"v": 3})  # must not block
        t2.commit()

    def test_blocking_wait_succeeds_across_threads(self, db):
        rid = db.insert("kv", {"k": "a", "v": 1})
        t1 = db.begin()
        t1.update("kv", rid, {"v": 2})
        results = {}

        def contender():
            t2 = db.begin(lock_timeout=3.0)
            t2.update("kv", rid, {"v": 3})
            t2.commit()
            results["done"] = True

        thread = threading.Thread(target=contender)
        thread.start()
        t1.commit()
        thread.join(timeout=5)
        assert results.get("done")
        assert db.get("kv", rid)["v"] == 3


class TestUniqueness:
    def test_duplicate_key_rejected(self, db):
        db.insert("kv", {"k": "a", "v": 1})
        with pytest.raises(UniqueViolation):
            db.insert("kv", {"k": "a", "v": 2})

    def test_duplicate_within_txn_rejected(self, db):
        txn = db.begin()
        txn.insert("kv", {"k": "a", "v": 1})
        with pytest.raises(UniqueViolation):
            txn.insert("kv", {"k": "a", "v": 2})
        txn.abort()

    def test_key_freed_by_delete_in_same_txn(self, db):
        rid = db.insert("kv", {"k": "a", "v": 1})
        with db.transaction() as txn:
            txn.delete("kv", rid)
            txn.insert("kv", {"k": "a", "v": 2})
        rows = db.query("kv").run()
        assert len(rows) == 1
        assert rows[0]["v"] == 2

    def test_concurrent_key_claim_blocks(self, db):
        t1 = db.begin(lock_timeout=0)
        t2 = db.begin(lock_timeout=0)
        t1.insert("kv", {"k": "same", "v": 1})
        with pytest.raises(LockTimeoutError):
            t2.insert("kv", {"k": "same", "v": 2})
        t1.abort()
        t2.insert("kv", {"k": "same", "v": 2})
        t2.commit()
        assert db.query("kv").run()[0]["v"] == 2

    def test_update_to_existing_key_rejected(self, db):
        db.insert("kv", {"k": "a", "v": 1})
        rid = db.insert("kv", {"k": "b", "v": 2})
        with pytest.raises(UniqueViolation):
            db.update("kv", rid, {"k": "a"})


class TestSelectForUpdate:
    def test_get_for_update_blocks_other_writers(self, db):
        rid = db.insert("kv", {"k": "a", "v": 1})
        t1 = db.begin(lock_timeout=0)
        row = t1.get_for_update("kv", rid)
        assert row["v"] == 1
        t2 = db.begin(lock_timeout=0)
        with pytest.raises(LockTimeoutError):
            t2.update("kv", rid, {"v": 2})
        t1.update("kv", rid, {"v": row["v"] + 1})
        t1.commit()
        t2.abort()
        assert db.get("kv", rid)["v"] == 2

    def test_get_for_update_sees_own_pending(self, db):
        rid = db.insert("kv", {"k": "a", "v": 1})
        txn = db.begin()
        txn.update("kv", rid, {"v": 5})
        assert txn.get_for_update("kv", rid)["v"] == 5
        txn.abort()

    def test_get_for_update_missing_row(self, db):
        txn = db.begin()
        with pytest.raises(RowNotFoundError):
            txn.get_for_update("kv", 999)
        txn.abort()
