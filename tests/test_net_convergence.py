"""Socket-level convergence under seeded fault plans + causal traces.

Two real :class:`~repro.net.NetworkClient` editors over loopback TCP,
a :class:`~repro.net.ServerThread` whose outbound change frames pass
through a seeded :class:`~repro.faults.plan.NetFault` plan (drop /
delay / reorder).  After an interleaved editing run both replicas must
equal the server's authoritative document — text, styled runs and
chain integrity — with the healing mechanism the plan demands:

* delay/reorder-only plans converge on the pure delta path
  (``mirror.resyncs == 0``);
* drop plans legitimately heal through anti-entropy resync
  (``resyncs >= 1``).

The last test follows one keystroke's trace across all three
processes: the local editor's ``net.rpc``, the server's ``net.op`` /
``net.fanout`` and the remote editor's ``net.apply`` all share one
``trace_id``.
"""

from __future__ import annotations

import random
from time import monotonic

import pytest

from repro.collab import CollaborationServer
from repro.faults import FaultInjector, FaultPlan, NetFault
from repro.net import NetworkClient, ServerThread
from repro.obs import TraceBuffer, Tracer

SETTLE_SECONDS = 10.0


def make_server(net_fault: NetFault | None):
    collab = CollaborationServer()
    for user in ("ana", "ben", "judge"):
        collab.register_user(user)
    faults = None
    if net_fault is not None:
        faults = FaultInjector(FaultPlan(seed=0).with_net(net_fault))
    return collab, ServerThread(collab, faults=faults)


def settle(clients, doc, truth, timeout: float = SETTLE_SECONDS) -> None:
    """Poll (and periodically resync) until every replica matches.

    Compares styled runs, not just text: a dropped style-only NOTIFY
    must be healed too, even though it never changes ``text()``.
    """
    expected = truth.styled_runs()
    deadline = monotonic() + timeout
    last_sync = monotonic()
    while any(c.mirrors[doc].styled_runs() != expected for c in clients):
        assert monotonic() < deadline, (
            f"replicas did not converge: "
            f"{[c.mirrors[doc].text() for c in clients]!r} "
            f"!= {truth.text()!r}")
        for client in clients:
            client.poll(timeout=0.02)
        if monotonic() - last_sync > 0.4:
            for client in clients:
                client.sync(doc)
            last_sync = monotonic()


def interleaved_edit(rng: random.Random, sessions, handles, doc,
                     styles, rounds: int) -> None:
    """A seeded mixed workload: inserts, deletes, style flips."""
    from repro.errors import InvalidPositionError

    alphabet = "abcdefghij "
    for _ in range(rounds):
        i = rng.randrange(len(sessions))
        session, handle = sessions[i], handles[i]
        length = handle.length()
        roll = rng.random()
        # A stale replica may address positions the server has since
        # deleted; the server answers with an application ERROR and the
        # connection (and the workload) carries on — like a real editor.
        try:
            if roll < 0.70 or length < 4:
                pos = rng.randint(0, length)
                session.insert(doc, pos, rng.choice(alphabet))
            elif roll < 0.85:
                pos = rng.randrange(length)
                session.delete(doc, pos,
                               min(rng.randint(1, 3), length - pos))
            else:
                pos = rng.randrange(length)
                count = min(rng.randint(1, 5), length - pos)
                session.apply_style(doc, pos, count, rng.choice(styles))
        except InvalidPositionError:
            continue


@pytest.mark.parametrize("plan_seed", range(5), ids=lambda s: f"seed{s}")
def test_seeded_fault_plans_converge(plan_seed):
    """Drop+delay+reorder plans: replicas match the server exactly."""
    plan = FaultPlan.net_only(plan_seed)
    collab, thread = make_server(plan.net)
    with thread:
        ana = NetworkClient("127.0.0.1", thread.port, "ana")
        ben = NetworkClient("127.0.0.1", thread.port, "ben")
        try:
            styles = [
                collab.styles.define_style("bold", {"bold": True}, "judge"),
                collab.styles.define_style("mono", {"font": "mono"},
                                           "judge"),
                None,
            ]
            s_ana = ana.session()
            doc = s_ana.create_document("conv", text="seed text ").doc
            s_ben = ben.session()
            h_ana, h_ben = s_ana.handle(doc), s_ben.open(doc)
            rng = random.Random(plan_seed * 7919 + 17)
            interleaved_edit(rng, [s_ana, s_ben], [h_ana, h_ben], doc,
                             styles, rounds=60)

            judge = collab.connect("judge")
            truth = judge.open(doc)
            settle([ana, ben], doc, truth)
            for client, handle in ((ana, h_ana), (ben, h_ben)):
                assert handle.text() == truth.text()
                assert handle.styled_runs() == truth.styled_runs()
                assert handle.check_integrity() == []
        finally:
            ana.close()
            ben.close()


def test_delay_reorder_only_converges_on_the_delta_path():
    """A pure receiver heals reordering by buffering, never by resync.

    Single writer on purpose: a *writing* replica's ACK echo can race
    ahead of the delayed NOTIFY lane and legitimately schedule a
    resync, but a read-only replica under delay+reorder (no drops)
    sees every sequence number and must converge on buffered in-order
    application alone.
    """
    fault = NetFault(p_drop=0.0, p_delay=0.6, max_delay=0.01,
                     reorder_window=3)
    collab, thread = make_server(fault)
    with thread:
        ana = NetworkClient("127.0.0.1", thread.port, "ana")
        ben = NetworkClient("127.0.0.1", thread.port, "ben")
        try:
            s_ana = ana.session()
            doc = s_ana.create_document("delta").doc
            s_ben = ben.session()
            h_ben = s_ben.open(doc)
            rng = random.Random(404)
            for _ in range(50):
                pos = rng.randint(0, s_ana.handle(doc).length())
                s_ana.insert(doc, pos, rng.choice("abcdefghij "))

            judge = collab.connect("judge")
            truth = judge.open(doc)
            # No sync() calls: the delta lane alone must get there.
            deadline = monotonic() + SETTLE_SECONDS
            while h_ben.text() != truth.text():
                assert monotonic() < deadline, "delta path stalled"
                ben.poll(timeout=0.02)
            assert ben.mirrors[doc].resyncs == 0
            # seq 1 was the create-document commit; 50 inserts follow.
            assert ben.mirrors[doc].last_seq == 51
            assert h_ben.check_integrity() == []
            delayed = ana.server_stats()["net"]["frames_delayed"]
            assert delayed >= 1  # the plan actually fired
        finally:
            ana.close()
            ben.close()


def test_drop_heavy_plan_heals_through_resync():
    """Dropped NOTIFYs leave sequence gaps only resync can close."""
    fault = NetFault(p_drop=0.5, p_delay=0.0, reorder_window=0)
    collab, thread = make_server(fault)
    with thread:
        ana = NetworkClient("127.0.0.1", thread.port, "ana")
        ben = NetworkClient("127.0.0.1", thread.port, "ben")
        try:
            s_ana = ana.session()
            doc = s_ana.create_document("lossy").doc
            s_ben = ben.session()
            h_ben = s_ben.open(doc)
            for i in range(30):
                s_ana.insert(doc, i, "x")
            judge = collab.connect("judge")
            truth = judge.open(doc)
            settle([ben], doc, truth)
            assert h_ben.text() == "x" * 30
            # Half the frames died; ben must have pulled snapshots.
            assert ben.mirrors[doc].resyncs >= 1
            stats = ana.server_stats()
            assert stats["net"]["frames_dropped"] >= 1
            assert stats["net"]["resyncs"] >= 1
        finally:
            ana.close()
            ben.close()


def test_one_keystroke_traces_across_three_processes():
    """net.rpc -> net.op/net.fanout -> net.apply share one trace_id."""
    collab, thread = make_server(None)
    server_spans = TraceBuffer()
    collab.db.obs.tracer.add_sink(server_spans)
    with thread:
        tracer_ana, tracer_ben = Tracer(), Tracer()
        buf_ana = tracer_ana.add_sink(TraceBuffer())
        buf_ben = tracer_ben.add_sink(TraceBuffer())
        ana = NetworkClient("127.0.0.1", thread.port, "ana",
                            tracer=tracer_ana)
        ben = NetworkClient("127.0.0.1", thread.port, "ben",
                            tracer=tracer_ben)
        try:
            s_ana = ana.session()
            doc = s_ana.create_document("traced", text="abc").doc
            s_ben = ben.session()
            h_ben = s_ben.open(doc)

            s_ana.insert(doc, 3, "!")
            notes = []
            deadline = monotonic() + SETTLE_SECONDS
            while h_ben.text() != "abc!":
                assert monotonic() < deadline, "notify never arrived"
                notes.extend(ben.poll(timeout=0.05))

            # The keystroke's trace id, from ana's local rpc span.
            rpc_spans = [s for t in buf_ana.traces() for s in t.spans
                         if s.name == "net.rpc"
                         and s.attrs.get("verb") == "insert"]
            assert len(rpc_spans) == 1
            trace_id = rpc_spans[0].trace_id

            # Wire envelopes carried it to the server...
            names_at_server = {s.name for t in server_spans.traces()
                               if t.trace_id == trace_id for s in t.spans}
            assert "net.op" in names_at_server
            assert "net.fanout" in names_at_server
            # ...whose own op/txn spans joined the same trace...
            assert "collab.op" in names_at_server
            assert "txn" in names_at_server
            # ...and on to the remote replica's apply.
            applies = [s for t in buf_ben.traces() for s in t.spans
                       if s.name == "net.apply"
                       and s.trace_id == trace_id]
            assert applies, "remote apply did not join the trace"
            # The notification record exposes the same linkage.
            assert any(n.trace_id == trace_id for n in notes)
        finally:
            ana.close()
            ben.close()
