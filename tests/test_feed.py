"""Changefeed lifecycle tests: dispatch order, before-images, cursor
checkpoints, WAL catch-up after a restart, and exactly-once delivery
under seeded crash schedules."""

from __future__ import annotations

import pytest

from repro.db import Database, column, recover_file
from repro.db.wal import WriteAheadLog
from repro.errors import CrashSignal, FeedGapError
from repro.faults import FaultInjector, FaultPlan
from repro.feed import MaintenanceWorker
from repro.search import InvertedIndex
from repro.text import DocumentStore


def make_db(tmp_path=None, plan: FaultPlan | None = None) -> Database:
    kwargs = {}
    if tmp_path is not None:
        kwargs["wal_path"] = str(tmp_path / "wal.jsonl")
    if plan is not None:
        kwargs["faults"] = FaultInjector(plan)
    db = Database("feedtest", **kwargs)
    db.create_table("kv", [column("k", "str"), column("v", "int")], key="k")
    return db


def kv_state(batches) -> dict:
    """Fold kv batches into the derived key -> value map."""
    state: dict = {}
    for batch in batches:
        for event in batch.events:
            if event.table != "kv":
                continue
            if event.kind == "delete":
                state.pop(event.before["k"], None)
            else:
                state[event.row["k"]] = event.row["v"]
    return state


class TestDispatch:
    def test_one_batch_per_commit_with_before_images(self):
        db = make_db()
        batches = []
        db.changefeed().subscribe("probe", batches.append, tables=("kv",))
        rowid = db.insert("kv", {"k": "a", "v": 1})
        db.update("kv", rowid, {"v": 2})
        db.delete("kv", rowid)
        kinds = [e.kind for b in batches for e in b.events]
        assert kinds == ["insert", "update", "delete"]
        insert, update, delete = [b.events[0] for b in batches]
        assert insert.before is None and insert.row["v"] == 1
        assert update.before["v"] == 1 and update.row["v"] == 2
        assert delete.row is None and delete.before["v"] == 2
        assert [b.seq for b in batches] == sorted(b.seq for b in batches)
        assert all(b.lsn > 0 for b in batches)

    def test_table_filter_auto_acks_nonmatching_batches(self):
        db = make_db()
        db.create_table("other", [column("x", "int")])
        seen = []
        sub = db.changefeed().subscribe("probe", seen.append,
                                        tables=("other",))
        db.insert("kv", {"k": "a", "v": 1})
        assert seen == []
        assert sub.lag == 0  # advanced past the batch without a handler call

    def test_deferred_consumer_lags_until_acked(self):
        db = make_db()
        seen = []
        sub = db.changefeed().subscribe("probe", seen.append,
                                        tables=("kv",), deferred=True)
        db.insert("kv", {"k": "a", "v": 1})
        assert len(seen) == 1 and sub.lag == 1
        sub.ack(seen[-1].seq)
        assert sub.lag == 0

    def test_close_unsubscribes_and_is_idempotent(self):
        db = make_db()
        seen = []
        sub = db.changefeed().subscribe("probe", seen.append, tables=("kv",))
        db.insert("kv", {"k": "a", "v": 1})
        sub.close()
        sub.close()
        db.insert("kv", {"k": "b", "v": 2})
        assert len(seen) == 1
        assert sub not in db.changefeed().subscriptions()
        assert db.changefeed().max_lag() == 0

    def test_duplicate_consumer_names_are_deduped(self):
        db = make_db()
        first = db.changefeed().subscribe("probe", lambda b: None)
        second = db.changefeed().subscribe("probe", lambda b: None)
        assert first.name == "probe"
        assert second.name == "probe-2"

    def test_failing_consumer_is_isolated(self):
        db = make_db()
        seen = []

        def explode(batch):
            raise RuntimeError("boom")

        db.changefeed().subscribe("bad", explode, tables=("kv",))
        db.changefeed().subscribe("good", seen.append, tables=("kv",))
        db.insert("kv", {"k": "a", "v": 1})
        assert len(seen) == 1  # the good consumer still ran
        assert db.changefeed().errors[-1][0] == "bad"


class TestRetention:
    def test_batches_since_resumes_within_the_window(self):
        db = make_db()
        sub = db.changefeed().subscribe("probe", lambda b: None,
                                        tables=("kv",), deferred=True)
        for i in range(5):
            db.insert("kv", {"k": f"k{i}", "v": i})
        missed = db.changefeed().batches_since(sub.acked_seq)
        assert [e.row["k"] for b in missed for e in b.events] == \
            [f"k{i}" for i in range(5)]

    def test_fallen_off_the_window_raises_gap_error(self):
        db = make_db()
        feed = db.changefeed(retention=3)
        for i in range(6):
            db.insert("kv", {"k": f"k{i}", "v": i})
        with pytest.raises(FeedGapError):
            feed.batches_since(0)


class TestCursorRestart:
    def test_cursor_resume_after_restart(self, tmp_path):
        db = make_db(tmp_path)
        path = db.wal.path
        applied = []

        def apply(batch):
            applied.append(batch)
            sub.ack(batch.seq)

        feed = db.changefeed()
        sub = feed.subscribe("replayer", apply, tables=("kv",),
                             deferred=True)
        db.insert("kv", {"k": "a", "v": 1})
        db.insert("kv", {"k": "b", "v": 2})
        feed.checkpoint(sub)
        # Committed after the checkpoint: durable, but the consumer's
        # derived state never absorbed them before the "crash".
        db.insert("kv", {"k": "c", "v": 3})
        db.insert("kv", {"k": "d", "v": 4})

        recovered = recover_file(path)
        replayed = []
        delivered = recovered.changefeed().catch_up(
            "replayer", replayed.append, WriteAheadLog.load_file(path),
            tables=("kv",))
        assert delivered == 2
        assert [e.row["k"] for b in replayed for e in b.events] == ["c", "d"]
        assert all(b.seq == 0 for b in replayed)  # off the live seq axis
        # Post-restart commits stay monotonic on the LSN axis.
        high_water = max(b.lsn for b in replayed)
        recovered.insert("kv", {"k": "e", "v": 5})
        assert recovered.changefeed().last_lsn > high_water

    def test_catch_up_without_cursor_replays_everything(self, tmp_path):
        db = make_db(tmp_path)
        path = db.wal.path
        db.insert("kv", {"k": "a", "v": 1})
        rowid = db.insert("kv", {"k": "b", "v": 2})
        db.delete("kv", rowid)

        recovered = recover_file(path)
        replayed = []
        delivered = recovered.changefeed().catch_up(
            "fresh-consumer", replayed.append, WriteAheadLog.load_file(path),
            tables=("kv",))
        assert delivered == 3
        assert kv_state(replayed) == {"a": 1}
        # The replayed delete carries its before-image from the WAL.
        delete = replayed[-1].events[0]
        assert delete.kind == "delete" and delete.before["k"] == "b"


class TestExactlyOnce:
    @pytest.mark.parametrize("hit", [1, 2, 3, 4])
    def test_crash_mid_dispatch_redelivers_exactly_the_unabsorbed(
            self, tmp_path, hit):
        """Each committed batch is absorbed exactly once overall.

        The consumer applies a batch, acks it and checkpoints its
        cursor; ``feed.mid_dispatch`` kills the process before the
        ``hit``-th delivery.  After recovery, WAL catch-up from the
        checkpointed cursor must redeliver exactly the committed batches
        the consumer never absorbed — no loss, no double-apply."""
        plan = FaultPlan.crash_once("feed.mid_dispatch", hit=hit)
        db = make_db(tmp_path, plan)
        path = db.wal.path
        feed = db.changefeed()
        absorbed = []

        def apply(batch):
            absorbed.append(batch)
            sub.ack(batch.seq)
            feed.checkpoint(sub)

        sub = feed.subscribe("applier", apply, tables=("kv",),
                             deferred=True)
        keys = ["a", "b", "c", "d"]
        committed = []
        crashed = False
        for i, key in enumerate(keys):
            try:
                db.insert("kv", {"k": key, "v": i})
                committed.append(key)
            except CrashSignal:
                # The publish runs post-commit: the batch is durable
                # even though its dispatch died halfway.
                committed.append(key)
                crashed = True
                break
        assert crashed and len(absorbed) == hit - 1

        recovered = recover_file(path)
        replayed = []
        recovered.changefeed().catch_up(
            "applier", replayed.append, WriteAheadLog.load_file(path),
            tables=("kv",))
        absorbed_keys = [e.row["k"] for b in absorbed for e in b.events]
        replayed_keys = [e.row["k"] for b in replayed for e in b.events]
        assert absorbed_keys + replayed_keys == committed
        assert kv_state(absorbed + replayed) == \
            {k: committed.index(k) for k in committed}


class TestMaintenanceWorker:
    def test_worker_drains_and_checkpoints_the_index_cursor(self, tmp_path):
        db = Database("feedtest", wal_path=str(tmp_path / "wal.jsonl"))
        store = DocumentStore(db)
        index = InvertedIndex(db)
        worker = MaintenanceWorker(db)
        worker.register("search-index", index.maintain,
                        sub=index.subscription)
        handle = store.create("doc", "ana", text="alpha beta")
        handle.insert_text(10, " gamma", "ana")
        assert index.subscription.lag > 0
        rounds = worker.drain()
        assert rounds >= 1
        assert db.changefeed().max_lag() == 0
        assert len(index.postings("gamma")) == 1
        cursor = db.changefeed().cursor(index.subscription.name)
        assert cursor is not None and cursor["lsn"] > 0
        handle.close()
        index.close()

    def test_run_once_isolates_failing_tasks(self):
        db = make_db()
        worker = MaintenanceWorker(db)
        ticks = []

        def bad():
            raise RuntimeError("task boom")

        worker.register("bad", bad)
        worker.register("good", lambda: ticks.append(1))
        result = worker.run_once()
        assert ticks == [1]
        assert worker.errors[-1][0] == "bad"
        assert isinstance(result["bad"], RuntimeError)
