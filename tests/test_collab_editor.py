"""Tests for the headless editor client."""

import pytest

from repro.collab import CollaborationServer, EditorClient
from repro.errors import ClipboardError, InvalidPositionError


@pytest.fixture
def server():
    server = CollaborationServer()
    for user in ("ana", "ben"):
        server.register_user(user)
    return server


@pytest.fixture
def editors(server):
    s1 = server.connect("ana", os_name="windows")
    s2 = server.connect("ben", os_name="macos")
    handle = s1.create_document("d", text="hello world")
    e1 = EditorClient(s1, handle.doc)
    e2 = EditorClient(s2, handle.doc)
    return e1, e2


class TestCursorAndTyping:
    def test_type_at_cursor(self, editors):
        e1, __ = editors
        e1.move_end()
        e1.type("!")
        assert e1.text() == "hello world!"
        assert e1.cursor() == 12

    def test_type_in_middle(self, editors):
        e1, __ = editors
        e1.move_to(5)
        e1.type(",")
        assert e1.text() == "hello, world"
        assert e1.cursor() == 6

    def test_cursor_bounds(self, editors):
        e1, __ = editors
        with pytest.raises(InvalidPositionError):
            e1.move_to(99)
        with pytest.raises(InvalidPositionError):
            e1.move_to(-1)

    def test_arrow_movement_clamps(self, editors):
        e1, __ = editors
        e1.move_home()
        assert e1.move_left() == 0
        assert e1.move_right(3) == 3
        e1.move_end()
        assert e1.move_right() == 11

    def test_backspace(self, editors):
        e1, __ = editors
        e1.move_to(5)
        assert e1.backspace(2) == 2
        assert e1.text() == "hel world"
        assert e1.cursor() == 3

    def test_backspace_at_home_is_noop(self, editors):
        e1, __ = editors
        e1.move_home()
        assert e1.backspace() == 0

    def test_delete_forward(self, editors):
        e1, __ = editors
        e1.move_home()
        assert e1.delete_forward(6) == 6
        assert e1.text() == "world"

    def test_delete_forward_clamps(self, editors):
        e1, __ = editors
        e1.move_to(9)
        assert e1.delete_forward(10) == 2

    def test_cursor_follows_remote_inserts(self, editors):
        e1, e2 = editors
        e1.move_to(5)
        e2.move_home()
        e2.type(">>> ")
        assert e1.cursor() == 9
        e1.type("!")
        assert e1.text() == ">>> hello! world"

    def test_cursor_survives_remote_delete_of_anchor(self, editors):
        e1, e2 = editors
        e1.move_to(5)
        e2.select(2, 5)
        e2.delete_selection()
        assert e1.cursor() == 2
        e1.type("#")
        assert "#" in e1.text()


class TestSelection:
    def test_select_and_read(self, editors):
        e1, __ = editors
        assert e1.select(0, 5) == "hello"
        assert e1.selected_text() == "hello"

    def test_selection_replaced_by_typing(self, editors):
        e1, __ = editors
        e1.select(0, 5)
        e1.type("goodbye")
        assert e1.text() == "goodbye world"

    def test_selection_shrinks_on_remote_delete(self, editors):
        e1, e2 = editors
        e1.select(0, 5)
        e2.session.delete(e2.doc, 1, 2)  # deletes "el"
        assert e1.selected_text() == "hlo"

    def test_move_clears_selection(self, editors):
        e1, __ = editors
        e1.select(0, 5)
        e1.move_to(2)
        assert e1.selection() == ()

    def test_cut(self, editors):
        e1, __ = editors
        e1.select(0, 6)
        assert e1.cut() == "hello "
        assert e1.text() == "world"

    def test_copy_requires_selection(self, editors):
        e1, __ = editors
        with pytest.raises(ClipboardError):
            e1.copy()


class TestClipboardFlow:
    def test_copy_paste_within_document(self, editors):
        e1, __ = editors
        e1.select(0, 5)
        e1.copy()
        e1.move_end()
        e1.paste()
        assert e1.text() == "hello worldhello"

    def test_paste_replaces_selection(self, editors):
        e1, __ = editors
        e1.select(0, 5)
        e1.copy()
        e1.select(6, 5)  # "world"
        e1.paste()
        assert e1.text() == "hello hello"

    def test_clipboards_are_per_session(self, editors):
        e1, e2 = editors
        e1.select(0, 5)
        e1.copy()
        with pytest.raises(ClipboardError):
            e2.paste()


class TestStyling:
    def test_style_selection(self, server, editors):
        e1, __ = editors
        bold = server.styles.define_style("b", {"bold": True}, "ana")
        e1.select(0, 5)
        e1.style_selection(bold)
        runs = e1.handle.styled_runs()
        assert runs[0] == ("hello", bold)

    def test_ansi_render(self, server, editors):
        e1, __ = editors
        bold = server.styles.define_style("b", {"bold": True}, "ana")
        e1.select(0, 5)
        e1.style_selection(bold)
        out = e1.render(ansi=True)
        assert out.startswith("\x1b[1mhello\x1b[0m")


class TestUndoThroughEditor:
    def test_editor_undo_redo(self, editors):
        e1, __ = editors
        e1.move_end()
        e1.type("!!!")
        e1.undo()
        assert e1.text() == "hello world"
        e1.redo()
        assert e1.text() == "hello world!!!"

    def test_global_undo_via_editor(self, editors):
        e1, e2 = editors
        e2.move_home()
        e2.type("X")
        e1.undo_global()
        assert e1.text() == "hello world"


class TestRendering:
    def test_render_with_cursors(self, editors):
        e1, e2 = editors
        e1.move_to(5)
        e2.move_home()
        out = e1.render(show_cursors=True)
        assert "|ana|" in out and "|ben|" in out
        assert out.index("|ben|") < out.index("|ana|")

    def test_render_plain(self, editors):
        e1, __ = editors
        assert e1.render() == "hello world"

    def test_close(self, editors):
        e1, e2 = editors
        e2.close()
        assert e1.session.server.awareness.participants(e1.doc) == ["ana"]
