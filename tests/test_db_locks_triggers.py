"""Tests for the lock manager, trigger registry, catalog and event bus."""

import threading

import pytest

from repro.db import Database, column
from repro.db.locks import EXCLUSIVE, SHARED, LockManager
from repro.errors import DeadlockError, LockTimeoutError
from repro.events import EventBus


class TestLockManager:
    def test_shared_locks_coexist(self):
        lm = LockManager()
        lm.acquire(1, "r", SHARED)
        lm.acquire(2, "r", SHARED)
        assert set(lm.holders("r")) == {1, 2}

    def test_exclusive_blocks_shared(self):
        lm = LockManager()
        lm.acquire(1, "r", EXCLUSIVE)
        with pytest.raises(LockTimeoutError):
            lm.acquire(2, "r", SHARED, timeout=0)

    def test_reentrant_acquire(self):
        lm = LockManager()
        lm.acquire(1, "r", EXCLUSIVE)
        lm.acquire(1, "r", EXCLUSIVE)  # no deadlock with self
        lm.acquire(1, "r", SHARED)     # weaker mode is a no-op

    def test_upgrade_shared_to_exclusive(self):
        lm = LockManager()
        lm.acquire(1, "r", SHARED)
        lm.acquire(1, "r", EXCLUSIVE)
        assert lm.holders("r")[1] == EXCLUSIVE

    def test_upgrade_blocked_by_other_sharer(self):
        lm = LockManager()
        lm.acquire(1, "r", SHARED)
        lm.acquire(2, "r", SHARED)
        with pytest.raises(LockTimeoutError):
            lm.acquire(1, "r", EXCLUSIVE, timeout=0)

    def test_release_all_frees_resources(self):
        lm = LockManager()
        lm.acquire(1, "a", EXCLUSIVE)
        lm.acquire(1, "b", EXCLUSIVE)
        lm.release_all(1)
        assert lm.locks_held(1) == set()
        lm.acquire(2, "a", EXCLUSIVE, timeout=0)  # no contention left

    def test_deadlock_detected(self):
        lm = LockManager()
        lm.acquire(1, "a", EXCLUSIVE)
        lm.acquire(2, "b", EXCLUSIVE)

        errors = {}
        started = threading.Event()

        def t1_waits_for_b():
            started.set()
            try:
                lm.acquire(1, "b", EXCLUSIVE, timeout=5)
            except (DeadlockError, LockTimeoutError) as exc:
                errors["t1"] = exc
            finally:
                lm.release_all(1)

        thread = threading.Thread(target=t1_waits_for_b)
        thread.start()
        started.wait()
        # txn 2 now wants "a" held by txn 1 -> cycle.
        deadlocked = False
        try:
            lm.acquire(2, "a", EXCLUSIVE, timeout=5)
        except DeadlockError:
            deadlocked = True
        finally:
            lm.release_all(2)
        thread.join(timeout=5)
        # One of the two must have been chosen as victim.
        assert deadlocked or isinstance(errors.get("t1"), DeadlockError)

    def test_invalid_mode_rejected(self):
        lm = LockManager()
        with pytest.raises(ValueError):
            lm.acquire(1, "r", "Z")

    def test_stats_counted(self):
        lm = LockManager()
        lm.acquire(1, "r")
        assert lm.stats["acquired"] == 1
        with pytest.raises(LockTimeoutError):
            lm.acquire(2, "r", timeout=0)
        assert lm.stats["timeouts"] == 1


class TestTriggers:
    @pytest.fixture
    def db(self):
        db = Database("t")
        db.create_table("a", [column("x", "int")])
        db.create_table("b", [column("y", "int")])
        return db

    def test_table_trigger_fires_with_own_changes(self, db):
        seen = []
        db.triggers.on_commit("a", lambda txn, chs: seen.append(chs))
        with db.transaction() as txn:
            txn.insert("a", {"x": 1})
            txn.insert("b", {"y": 2})
        assert len(seen) == 1
        assert all(c.table == "a" for c in seen[0])

    def test_wildcard_trigger_sees_all_changes(self, db):
        seen = []
        db.triggers.on_commit("*", lambda txn, chs: seen.append(chs))
        with db.transaction() as txn:
            txn.insert("a", {"x": 1})
            txn.insert("b", {"y": 2})
        assert len(seen) == 1
        assert {c.table for c in seen[0]} == {"a", "b"}

    def test_trigger_not_fired_on_abort(self, db):
        seen = []
        db.triggers.on_commit("a", lambda txn, chs: seen.append(chs))
        txn = db.begin()
        txn.insert("a", {"x": 1})
        txn.abort()
        assert seen == []

    def test_trigger_removal(self, db):
        seen = []
        handle = db.triggers.on_commit("a", lambda txn, chs: seen.append(1))
        handle.remove()
        db.insert("a", {"x": 1})
        assert seen == []

    def test_trigger_can_run_own_transaction(self, db):
        def echo(txn, changes):
            if changes[0].table == "a":
                db.insert("b", {"y": changes[0].row["x"]})

        db.triggers.on_commit("a", echo)
        db.insert("a", {"x": 42})
        assert db.query("b").run()[0]["y"] == 42

    def test_change_payload_shape(self, db):
        captured = []
        db.triggers.on_commit("a", lambda txn, chs: captured.extend(chs))
        rid = db.insert("a", {"x": 1})
        db.update("a", rid, {"x": 2})
        db.delete("a", rid)
        kinds = [c.kind for c in captured]
        assert kinds == ["insert", "update", "delete"]
        assert captured[0].row == {"x": 1}
        assert captured[1].row == {"x": 2}
        assert captured[2].row is None


class TestEventBus:
    def test_publish_subscribe(self):
        bus = EventBus()
        seen = []
        bus.subscribe("a.*", lambda e: seen.append(e.topic))
        bus.publish("a.b")
        bus.publish("a.c", extra=1)
        bus.publish("z.z")
        assert seen == ["a.b", "a.c"]

    def test_unsubscribe(self):
        bus = EventBus()
        seen = []
        sub = bus.subscribe("x", lambda e: seen.append(1))
        sub.cancel()
        sub.cancel()  # idempotent
        bus.publish("x")
        assert seen == []

    def test_payload_access(self):
        bus = EventBus()
        seen = {}
        bus.subscribe("x", lambda e: seen.update(v=e["v"], d=e.get("nope", 9)))
        bus.publish("x", v=5)
        assert seen == {"v": 5, "d": 9}

    def test_db_commit_event_published(self):
        db = Database("t")
        db.create_table("a", [column("x", "int")])
        topics = []
        db.bus.subscribe("db.*", lambda e: topics.append(e.topic))
        db.insert("a", {"x": 1})
        txn = db.begin()
        txn.abort()
        assert topics == ["db.commit", "db.abort"]


class TestCatalog:
    def test_table_and_index_info(self, people_db):
        info = people_db.catalog.table_info("people")
        assert info.row_count == 5
        assert info.key == "name"
        assert "people_key" in info.index_names
        indexes = list(people_db.catalog.iter_indexes("people"))
        assert {i.column for i in indexes} == {"name", "age"}
        unique_flags = {i.name: i.unique for i in indexes}
        assert unique_flags["people_key"] is True

    def test_total_rows(self, people_db):
        assert people_db.catalog.total_rows() == 5

    def test_table_names_sorted(self, people_db):
        people_db.create_table("aaa", [column("x", "int")])
        names = people_db.catalog.table_names()
        assert names == sorted(names)


class TestTriggerFailureIsolation:
    def test_failing_trigger_does_not_break_commit(self):
        db = Database("t")
        db.create_table("a", [column("x", "int")])

        def bad_trigger(txn, changes):
            raise RuntimeError("trigger bug")

        seen = []
        db.triggers.on_commit("a", bad_trigger)
        db.triggers.on_commit("a", lambda txn, chs: seen.append(1))
        rid = db.insert("a", {"x": 1})        # must not raise
        assert db.get("a", rid)["x"] == 1     # commit fully applied
        assert seen == [1]                    # later triggers still ran
        assert len(db.triggers.errors) == 1
        table, exc = db.triggers.errors[0]
        assert table == "a"
        assert isinstance(exc, RuntimeError)

    def test_error_list_bounded(self):
        db = Database("t")
        db.create_table("a", [column("x", "int")])
        db.triggers.on_commit(
            "a", lambda txn, chs: (_ for _ in ()).throw(ValueError("x")))
        for i in range(db.triggers.ERROR_LIMIT + 20):
            db.insert("a", {"x": i})
        assert len(db.triggers.errors) == db.triggers.ERROR_LIMIT
