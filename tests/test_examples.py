"""Smoke tests: every example script must run cleanly end to end."""

import importlib.util
import io
import sys
from contextlib import redirect_stdout
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def _run_example(name: str) -> str:
    """Import an example module and run its main(); returns stdout."""
    path = EXAMPLES_DIR / name
    spec = importlib.util.spec_from_file_location(name[:-3], path)
    module = importlib.util.module_from_spec(spec)
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        spec.loader.exec_module(module)
        # Scripts guard main() behind __main__; call explicitly.
        if hasattr(module, "main"):
            module.main()
        else:
            for fn_name in ("scripted_party", "simulated_party"):
                getattr(module, fn_name)()
    return buffer.getvalue()


@pytest.mark.parametrize("script", [
    "quickstart.py",
    "lan_party.py",
    "document_workflow.py",
    "knowledge_portal.py",
    "time_travel.py",
])
def test_example_runs(script):
    output = _run_example(script)
    assert output.strip()


def test_quickstart_output_content():
    output = _run_example("quickstart.py")
    assert "Hello, world!" in output
    assert "authors:" in output


def test_lan_party_converges():
    output = _run_example("lan_party.py")
    assert "converged    : True" in output
    assert "chain intact : True" in output


def test_workflow_completes():
    output = _run_example("document_workflow.py")
    assert "process state: completed" in output
    assert "The supplier delivers monthly." in output


def test_knowledge_portal_sections():
    output = _run_example("knowledge_portal.py")
    for heading in ("Dynamic folders", "Data lineage", "Visual mining",
                    "Search"):
        assert heading in output
    assert "paste(s) in" in output   # the Fig. 1 tree rendered


def test_time_travel_recovery():
    output = _run_example("time_travel.py")
    assert "matches committed state: True" in output
    assert "chain integrity: OK" in output
