"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.clock import SimulatedClock
from repro.db import Database, column


@pytest.fixture
def clock() -> SimulatedClock:
    return SimulatedClock()


@pytest.fixture
def db(clock: SimulatedClock) -> Database:
    """A fresh in-memory database with a deterministic clock."""
    return Database("test", clock=clock)


@pytest.fixture
def people_db(db: Database) -> Database:
    """A database with a small `people` table used across query tests."""
    db.create_table(
        "people",
        [
            column("name", "str"),
            column("age", "int"),
            column("city", "str", nullable=True),
        ],
        key="name",
    )
    db.create_index("people", "age", kind="ordered")
    rows = [
        ("ana", 34, "zurich"),
        ("ben", 27, "bolzano"),
        ("cleo", 41, "zurich"),
        ("dan", 27, None),
        ("eva", 55, "geneva"),
    ]
    for name, age, city in rows:
        db.insert("people", {"name": name, "age": age, "city": city})
    return db
