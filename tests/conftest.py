"""Shared fixtures, torture options, and seed-reproducibility plumbing."""

from __future__ import annotations

import pytest
from hypothesis import settings as hypothesis_settings

from repro.clock import SimulatedClock
from repro.db import Database, column

# Failing hypothesis examples must print their reproduction blob — the
# property-test analogue of the torture suite's printed seeds.
hypothesis_settings.register_profile("repro", print_blob=True)
hypothesis_settings.load_profile("repro")


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--torture-schedules",
        type=int,
        default=25,
        help="number of seeded crash/fault schedules per parameterised "
             "torture test (tier-1 default: 25; nightly: 500)",
    )
    parser.addoption(
        "--soak-seed",
        type=int,
        default=2006,
        help="master seed for the newsroom soak test (printed on failure)",
    )


def pytest_configure(config: pytest.Config) -> None:
    config.addinivalue_line(
        "markers",
        "torture: seeded fault-injection torture tests; scale the schedule "
        "count with --torture-schedules N",
    )


def pytest_generate_tests(metafunc: pytest.Metafunc) -> None:
    """Parameterise any test taking ``crash_seed`` over the seed range.

    Every instance's id carries its seed (``seed7``), so a failing
    schedule is rerunnable as ``pytest -k seed7`` — no flaky reruns.
    """
    if "crash_seed" in metafunc.fixturenames:
        n = metafunc.config.getoption("--torture-schedules")
        metafunc.parametrize("crash_seed", range(n),
                             ids=lambda s: f"seed{s}")


@pytest.fixture(scope="session")
def torture_schedules(request: pytest.FixtureRequest) -> int:
    return request.config.getoption("--torture-schedules")


@pytest.fixture
def clock() -> SimulatedClock:
    return SimulatedClock()


@pytest.fixture
def db(clock: SimulatedClock) -> Database:
    """A fresh in-memory database with a deterministic clock."""
    return Database("test", clock=clock)


@pytest.fixture
def people_db(db: Database) -> Database:
    """A database with a small `people` table used across query tests."""
    db.create_table(
        "people",
        [
            column("name", "str"),
            column("age", "int"),
            column("city", "str", nullable=True),
        ],
        key="name",
    )
    db.create_index("people", "age", kind="ordered")
    rows = [
        ("ana", 34, "zurich"),
        ("ben", 27, "bolzano"),
        ("cleo", 41, "zurich"),
        ("dan", 27, None),
        ("eva", 55, "geneva"),
    ]
    for name, age, city in rows:
        db.insert("people", {"name": name, "age": age, "city": city})
    return db
