"""Tests for principals and access control."""

import pytest

from repro.db import Database
from repro.errors import AccessDenied, SecurityError, UnknownPrincipalError
from repro.security import AccessController, PrincipalRegistry
from repro.text import DocumentStore


@pytest.fixture
def db():
    return Database("t")


@pytest.fixture
def principals(db):
    registry = PrincipalRegistry(db)
    for user in ("ana", "ben", "cleo"):
        registry.add_user(user)
    registry.add_role("editors")
    registry.add_role("reviewers")
    return registry


@pytest.fixture
def acl(db, principals):
    return AccessController(db, principals)


@pytest.fixture
def store(db):
    return DocumentStore(db)


class TestPrincipals:
    def test_users_and_roles_listed(self, principals):
        assert principals.users() == ["ana", "ben", "cleo"]
        assert principals.roles() == ["editors", "reviewers"]

    def test_empty_names_rejected(self, principals):
        with pytest.raises(SecurityError):
            principals.add_user("")
        with pytest.raises(SecurityError):
            principals.add_role("")

    def test_membership(self, principals):
        principals.assign_role("ben", "editors")
        assert principals.roles_of("ben") == {"editors"}
        assert principals.members_of("editors") == {"ben"}
        principals.remove_role("ben", "editors")
        assert principals.roles_of("ben") == set()

    def test_assign_unknown_user(self, principals):
        with pytest.raises(UnknownPrincipalError):
            principals.assign_role("ghost", "editors")

    def test_assign_unknown_role(self, principals):
        with pytest.raises(UnknownPrincipalError):
            principals.assign_role("ana", "ghosts")

    def test_assign_idempotent(self, principals):
        principals.assign_role("ben", "editors")
        principals.assign_role("ben", "editors")
        assert principals.members_of("editors") == {"ben"}

    def test_principals_of(self, principals):
        principals.assign_role("ana", "editors")
        principals.assign_role("ana", "reviewers")
        assert principals.principals_of("ana") == {
            "ana", "editors", "reviewers",
        }


class TestDocumentAcl:
    def test_open_by_default(self, acl, store):
        h = store.create("d", "ana")
        for user in ("ana", "ben", "cleo"):
            assert acl.allowed(h.doc, user, "write")

    def test_grant_restricts_to_grantees(self, acl, store):
        h = store.create("d", "ana")
        acl.grant(h.doc, "ben", "write", "ana")
        assert acl.allowed(h.doc, "ben", "write")
        assert not acl.allowed(h.doc, "cleo", "write")

    def test_creator_always_allowed(self, acl, store):
        h = store.create("d", "ana")
        acl.grant(h.doc, "ben", "write", "ana")
        assert acl.allowed(h.doc, "ana", "write")

    def test_role_grant(self, acl, principals, store):
        h = store.create("d", "ana")
        principals.assign_role("cleo", "editors")
        acl.grant(h.doc, "editors", "write", "ana")
        assert acl.allowed(h.doc, "cleo", "write")
        assert not acl.allowed(h.doc, "ben", "write")

    def test_grant_requires_grant_permission(self, acl, store):
        h = store.create("d", "ana")
        acl.grant(h.doc, "ben", "grant", "ana")
        # cleo has no grant permission once restricted.
        with pytest.raises(AccessDenied):
            acl.grant(h.doc, "cleo", "write", "cleo")
        # ben holds grant and may delegate.
        acl.grant(h.doc, "cleo", "write", "ben")
        assert acl.allowed(h.doc, "cleo", "write")

    def test_revoke(self, acl, store):
        h = store.create("d", "ana")
        acl.grant(h.doc, "ben", "write", "ana")
        assert acl.revoke(h.doc, "ben", "write", "ana") == 1
        # No grants left: document open again.
        assert acl.allowed(h.doc, "cleo", "write")

    def test_unknown_permission(self, acl, store):
        h = store.create("d", "ana")
        with pytest.raises(SecurityError):
            acl.grant(h.doc, "ben", "fly", "ana")
        with pytest.raises(SecurityError):
            acl.allowed(h.doc, "ben", "fly")

    def test_require_raises(self, acl, store):
        h = store.create("d", "ana")
        acl.grant(h.doc, "ben", "read", "ana")
        with pytest.raises(AccessDenied):
            acl.require(h.doc, "cleo", "read")

    def test_permissions_independent(self, acl, store):
        h = store.create("d", "ana")
        acl.grant(h.doc, "ben", "write", "ana")
        # read is still open even though write is restricted.
        assert acl.allowed(h.doc, "cleo", "read")


class TestRangeProtection:
    def test_protect_blocks_non_exempt(self, acl, store):
        h = store.create("d", "ana", text="secret text")
        acl.protect_range(h, 0, 6, "ana")
        with pytest.raises(AccessDenied):
            acl.check_chars_editable(h.doc, "ben", [h.char_oid_at(0)])

    def test_exempt_users_pass(self, acl, store):
        h = store.create("d", "ana", text="secret text")
        acl.protect_range(h, 0, 6, "ana", exempt=("ben",))
        acl.check_chars_editable(h.doc, "ben", [h.char_oid_at(0)])

    def test_exempt_roles_pass(self, acl, principals, store):
        h = store.create("d", "ana", text="secret text")
        principals.assign_role("cleo", "reviewers")
        acl.protect_range(h, 0, 6, "ana", exempt=("reviewers",))
        acl.check_chars_editable(h.doc, "cleo", [h.char_oid_at(0)])

    def test_protector_is_exempt(self, acl, store):
        h = store.create("d", "ana", text="secret text")
        acl.protect_range(h, 0, 6, "ana")
        acl.check_chars_editable(h.doc, "ana", [h.char_oid_at(0)])

    def test_unprotected_chars_editable(self, acl, store):
        h = store.create("d", "ana", text="secret text")
        acl.protect_range(h, 0, 6, "ana")
        acl.check_chars_editable(h.doc, "ben", [h.char_oid_at(8)])

    def test_release(self, acl, store):
        h = store.create("d", "ana", text="secret text")
        protection = acl.protect_range(h, 0, 6, "ana")
        acl.release_protection(protection, "ana")
        acl.check_chars_editable(h.doc, "ben", [h.char_oid_at(0)])
        assert acl.protections_for(h.doc) == []

    def test_protection_requires_grant(self, acl, store):
        h = store.create("d", "ana", text="x")
        acl.grant(h.doc, "ana", "grant", "ana")
        with pytest.raises(AccessDenied):
            acl.protect_range(h, 0, 1, "ben")

    def test_out_of_range_rejected(self, acl, store):
        h = store.create("d", "ana", text="abc")
        with pytest.raises(SecurityError):
            acl.protect_range(h, 0, 99, "ana")

    def test_protection_follows_oids_not_positions(self, acl, store):
        h = store.create("d", "ana", text="abcdef")
        acl.protect_range(h, 2, 2, "ana")   # protects "cd"
        h.insert_text(0, "XX", "ana")       # shifts positions by 2
        # "cd" is now at positions 4-5 but still protected.
        with pytest.raises(AccessDenied):
            acl.check_chars_editable(h.doc, "ben", [h.char_oid_at(4)])
        # Position 2 (now "a") is not protected.
        acl.check_chars_editable(h.doc, "ben", [h.char_oid_at(2)])


class TestReadProtection:
    def test_redacted_for_non_exempt(self, acl, store):
        h = store.create("d", "ana", text="public SECRET end")
        acl.protect_range(h, 7, 6, "ana", mode="read")
        assert acl.redacted_text(h, "ben") == "public ██████ end"

    def test_protector_sees_everything(self, acl, store):
        h = store.create("d", "ana", text="public SECRET end")
        acl.protect_range(h, 7, 6, "ana", mode="read")
        assert acl.redacted_text(h, "ana") == "public SECRET end"

    def test_exempt_role_sees(self, acl, principals, store):
        h = store.create("d", "ana", text="public SECRET end")
        principals.assign_role("cleo", "reviewers")
        acl.protect_range(h, 7, 6, "ana", mode="read",
                          exempt=("reviewers",))
        assert acl.redacted_text(h, "cleo") == "public SECRET end"

    def test_read_protection_blocks_edits_too(self, acl, store):
        h = store.create("d", "ana", text="public SECRET end")
        acl.protect_range(h, 7, 6, "ana", mode="read")
        with pytest.raises(AccessDenied):
            acl.check_chars_editable(h.doc, "ben", [h.char_oid_at(9)])

    def test_write_protection_does_not_hide(self, acl, store):
        h = store.create("d", "ana", text="locked text")
        acl.protect_range(h, 0, 6, "ana", mode="write")
        assert acl.redacted_text(h, "ben") == "locked text"
        assert acl.hidden_oids(h.doc, "ben") == set()

    def test_custom_mask(self, acl, store):
        h = store.create("d", "ana", text="ab")
        acl.protect_range(h, 0, 1, "ana", mode="read")
        assert acl.redacted_text(h, "ben", mask="?") == "?b"

    def test_unknown_mode_rejected(self, acl, store):
        h = store.create("d", "ana", text="ab")
        with pytest.raises(SecurityError):
            acl.protect_range(h, 0, 1, "ana", mode="ghost")

    def test_release_unhides(self, acl, store):
        h = store.create("d", "ana", text="ab")
        protection = acl.protect_range(h, 0, 1, "ana", mode="read")
        acl.release_protection(protection, "ana")
        assert acl.redacted_text(h, "ben") == "ab"
