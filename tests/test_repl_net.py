"""The wire replication lane: SUBSCRIBE segments, acks, status scrapes.

A real :class:`ServerThread` leader on loopback TCP with a
:class:`ReplicationClient` follower — the ``repro serve --follow``
topology in miniature.  Covers catch-up over the pull protocol, live
streaming on a dedicated thread, payload fidelity for tagged values
(OIDs survive the decode/re-encode round trip), token enforcement on
the subscription lane, and the follower's read-only status endpoint.
"""

from __future__ import annotations

import asyncio
import threading
from time import monotonic, sleep

import pytest

from repro.collab import CollaborationServer
from repro.errors import AccessDenied
from repro.net import (
    NetworkClient,
    ReplicaStatusServer,
    ReplicationClient,
    ServerThread,
    scrape,
)
from repro.net.replica import wire_to_record
from repro.repl import FollowerEngine

SETTLE_SECONDS = 10.0


def make_collab(wal_path) -> CollaborationServer:
    """A leader with a file-backed WAL.

    The file matters: tailers and the SUBSCRIBE lane ship only the
    *durable* prefix, and only fsync advances ``durable_lsn``.
    """
    collab = CollaborationServer(wal_path=str(wal_path))
    collab.register_user("ana")
    return collab


def type_text(thread: ServerThread, text: str,
              token: str | None = None) -> None:
    client = NetworkClient("127.0.0.1", thread.port, "ana", token=token)
    try:
        session = client.session()
        handle = session.create_document("wire")
        session.insert(handle.doc, 0, text)
    finally:
        client.close()


def tables_equal(leader_db, replica_db) -> None:
    assert set(leader_db.tables()) == set(replica_db.tables())
    for name in leader_db.tables():
        assert dict(leader_db.table(name).committed_items()) \
            == dict(replica_db.table(name).committed_items()), name


class TestSubscription:
    def test_step_catches_up_a_fresh_follower(self, tmp_path):
        collab = make_collab(tmp_path / "leader.wal")
        with ServerThread(collab) as thread:
            type_text(thread, "hello wire")
            follower = FollowerEngine(node="replica")
            client = ReplicationClient("127.0.0.1", thread.port, follower)
            while follower.applied_lsn < collab.db.wal.durable_lsn:
                client.step()
            assert follower.lag_lsn == 0
            tables_equal(collab.db, follower.db)
            # OID-typed columns survived the wire (tagged payloads were
            # re-encoded, not flattened into plain dicts).
            registry = thread.server.collab.db.obs.registry.snapshot()
            assert registry["repl.segments_shipped"]["value"] >= 1
            follower.close()

    def test_run_streams_live_edits_until_stopped(self, tmp_path):
        collab = make_collab(tmp_path / "leader.wal")
        with ServerThread(collab) as thread:
            follower = FollowerEngine(node="replica")
            client = ReplicationClient("127.0.0.1", thread.port, follower,
                                       poll_interval=0.01)
            stop = threading.Event()
            outcome: list = []
            streamer = threading.Thread(
                target=lambda: outcome.append(client.run(stop)),
                daemon=True)
            streamer.start()
            type_text(thread, "streamed while following")
            deadline = monotonic() + SETTLE_SECONDS
            while follower.applied_lsn < collab.db.wal.durable_lsn:
                assert monotonic() < deadline, "stream never caught up"
                sleep(0.01)
            stop.set()
            streamer.join(timeout=SETTLE_SECONDS)
            assert outcome == ["stopped"]
            tables_equal(collab.db, follower.db)
            follower.close()

    def test_leader_death_reports_disconnected(self, tmp_path):
        collab = make_collab(tmp_path / "leader.wal")
        thread = ServerThread(collab).start()
        type_text(thread, "x")
        follower = FollowerEngine(node="replica")
        client = ReplicationClient("127.0.0.1", thread.port, follower,
                                   poll_interval=0.01)
        outcome: list = []
        streamer = threading.Thread(
            target=lambda: outcome.append(client.run()), daemon=True)
        streamer.start()
        # Wait for the stream to be established *and* caught up, so the
        # kill severs a live subscription rather than racing the connect.
        deadline = monotonic() + SETTLE_SECONDS
        while follower.applied_lsn < collab.db.wal.durable_lsn \
                or follower.applied_lsn == 0:
            assert monotonic() < deadline
            sleep(0.01)
        thread.stop()  # the leader dies mid-subscription
        streamer.join(timeout=SETTLE_SECONDS)
        assert outcome == ["disconnected"]
        follower.close()

    def test_unreachable_leader_raises_not_disconnects(self):
        from repro.errors import NetError

        follower = FollowerEngine(node="replica")
        client = ReplicationClient("127.0.0.1", 1, follower, timeout=0.5)
        # A typo'd address must never look like a dead leader (which
        # would promote the follower over nothing).
        with pytest.raises(NetError):
            client.run()
        follower.close()

    def test_subscription_requires_the_shared_token(self, tmp_path):
        collab = make_collab(tmp_path / "leader.wal")
        with ServerThread(collab, token="sesame") as thread:
            follower = FollowerEngine(node="replica")
            client = ReplicationClient("127.0.0.1", thread.port, follower)
            with pytest.raises(AccessDenied):
                client.step()
            authed = ReplicationClient("127.0.0.1", thread.port, follower,
                                       token="sesame")
            authed.step()
            follower.close()

    def test_wire_record_reencodes_tagged_payloads(self):
        raw = {"lsn": 7, "type": "COMMIT", "txn": 3,
               "payload": {"rows": [1, 2], "by": None}}
        record = wire_to_record(raw)
        assert (record.lsn, record.type, record.txn_id) == (7, "COMMIT", 3)
        assert record.payload["rows"] == [1, 2]
        empty = wire_to_record({"lsn": 1, "type": "BEGIN", "txn": 1,
                                "payload": None})
        assert empty.payload == {}


class TestReplicaStatusServer:
    def run_against_status(self, follower, fn):
        async def scenario():
            status = ReplicaStatusServer(follower, telemetry_interval=0.0)
            await status.start()
            loop = asyncio.get_running_loop()
            try:
                return await loop.run_in_executor(
                    None, lambda: fn(status.port))
            finally:
                await status.stop()
        return asyncio.run(scenario())

    def test_stats_scrape_carries_repl_status(self):
        follower = FollowerEngine(node="replica")
        payload = self.run_against_status(
            follower,
            lambda port: scrape("127.0.0.1", port, kind="stats"))
        assert payload["node"] == "replica"
        repl = payload["repl"]
        assert repl["promoted"] is False
        assert repl["applied_lsn"] == 0
        assert "repl.apply_lag_lsn" in payload["metrics"]
        follower.close()

    def test_health_scrape_includes_repl_lag_check(self):
        follower = FollowerEngine(node="replica")
        verdict = self.run_against_status(
            follower,
            lambda port: scrape("127.0.0.1", port, kind="health"))
        checks = {c["check"]: c for c in verdict["checks"]}
        assert "repl.lag" in checks
        assert checks["repl.lag"]["status"] == "ok"
        follower.close()

    def test_status_endpoint_rejects_editor_frames(self):
        from repro.errors import ProtocolError

        follower = FollowerEngine(node="replica")

        def connect_as_editor(port):
            client = NetworkClient("127.0.0.1", port, "ana")
            try:
                client.session()
            finally:
                client.close()

        with pytest.raises(ProtocolError):
            self.run_against_status(follower, connect_as_editor)
        follower.close()
