"""System soak test: a simulated newsroom running every subsystem at once.

Five journalists and two editors work several articles concurrently
(typing, styling, pasting between articles and from "the wire"), while a
review workflow routes tasks, dynamic folders watch the document space,
and the search index follows along.  After the shift, every
cross-subsystem invariant is checked.

This is deliberately one big scenario: the unit suites prove each part;
this proves they cohabit.
"""

from __future__ import annotations

import random
import zlib

import pytest

from repro.collab import CollaborationServer, EditorClient
from repro.errors import TendaxError
from repro.folders import (
    AuthoredBy,
    DynamicFolderManager,
    SizeAtLeast,
    StateIs,
)
from repro.lineage import LineageGraph
from repro.meta import MetadataCollector
from repro.search import SearchEngine
from repro.text import dbschema as S
from repro.workload import SimulatedTypist

JOURNALISTS = ("ana", "ben", "cleo", "dan", "eva")
EDITORS = ("frank", "gala")
ARTICLES = 4
OPS_PER_JOURNALIST = 60


def _typist_seed(master: int, user: str, article: int) -> int:
    """Per-typist seed derived from the master seed and the user *name*.

    ``hash(user)`` would be salted per process (PYTHONHASHSEED), silently
    changing the workload between runs; crc32 is stable, so the whole
    soak reproduces from ``--soak-seed`` alone.
    """
    return (master * 1_000_003 + zlib.crc32(user.encode()) + article) % 2**31


@pytest.fixture(scope="module")
def newsroom(request):
    seed = request.config.getoption("--soak-seed")
    # Captured stdout is replayed for failing tests: this line is the
    # reproduction handle.
    print(f"newsroom soak: rerun with --soak-seed {seed}")
    rng = random.Random(seed)
    server = CollaborationServer()
    for user in JOURNALISTS:
        server.register_user(user, roles=("journalists",))
    for user in EDITORS:
        server.register_user(user, roles=("editors",))

    meta = MetadataCollector(server.db)
    folders = DynamicFolderManager(server.db)
    folders.create_folder("publishable", StateIs("final"))
    folders.create_folder("long-reads", SizeAtLeast(800))
    folders.create_folder("ana-bylines", AuthoredBy("ana", 50))

    # Editors create the articles; journalists connect with editors.
    chief = server.connect("frank", os_name="linux")
    articles = [
        chief.create_document(f"article-{i}", text=f"Article {i} draft. ")
        for i in range(ARTICLES)
    ]
    sessions = {user: server.connect(user) for user in JOURNALISTS}
    editors_by_user = {
        user: [EditorClient(session, article.doc)
               for article in articles]
        for user, session in sessions.items()
    }
    typists = {
        user: [SimulatedTypist(editor, seed=_typist_seed(seed, user, i))
               for i, editor in enumerate(editors)]
        for user, editors in editors_by_user.items()
    }

    # The shift: interleaved random work + cross-article pastes + wire
    # copy (external lineage) + workflow churn.
    from repro.process import TaskList, WorkflowManager
    wf = WorkflowManager(server.db, server.principals)
    task_list = TaskList(wf)
    processes = []
    for article in articles:
        process = wf.define_process(article.doc, "review", "frank")
        first = wf.add_task(process, "fact-check", "journalists", "frank")
        second = wf.add_task(process, "sign-off", "editors", "frank",
                             depends_on=[first])
        wf.start_process(process, "frank")
        processes.append((process, first, second))

    for round_no in range(OPS_PER_JOURNALIST):
        for user in JOURNALISTS:
            typist = typists[user][round_no % ARTICLES]
            typist.step()
        if round_no % 10 == 5:
            # Wire copy: external content pasted with lineage.
            user = rng.choice(JOURNALISTS)
            session = sessions[user]
            article = rng.choice(articles)
            session.copy_external(
                f"wire item {round_no} from the agency", "reuters://wire")
            session.paste(article.doc, 0)
        if round_no % 15 == 7:
            # Cross-article paste.
            user = rng.choice(JOURNALISTS)
            session = sessions[user]
            src, dst = rng.sample(articles, 2)
            if src.length() > 20:
                session.copy(src.doc, 5, 10)
                session.paste(dst.doc, min(3, dst.length()))

    # Workflow completion and publication.
    for (process, first, second), article in zip(processes, articles):
        worker = rng.choice(JOURNALISTS)
        wf.start_task(first, worker)
        wf.complete_task(first, worker)
        wf.complete_task(second, "gala")
        server.documents.set_state(article.doc, "final", "gala")

    return {
        "server": server, "articles": articles, "folders": folders,
        "meta": meta, "workflow": wf, "task_list": task_list,
        "sessions": sessions,
    }


class TestNewsroomInvariants:
    def test_all_replicas_converged(self, newsroom):
        for article in newsroom["articles"]:
            texts = set()
            for session in newsroom["sessions"].values():
                texts.add(session.handle(article.doc).text())
            assert len(texts) == 1

    def test_all_chains_intact(self, newsroom):
        for article in newsroom["articles"]:
            assert article.check_integrity() == []

    def test_sizes_consistent(self, newsroom):
        server = newsroom["server"]
        for article in newsroom["articles"]:
            meta_row = server.documents.meta(article.doc)
            assert meta_row["size"] == article.length()

    def test_workflows_completed(self, newsroom):
        wf = newsroom["workflow"]
        for article in newsroom["articles"]:
            for process in wf.processes_in(article.doc):
                assert process["state"] == "completed"

    def test_dynamic_folders_reflect_publication(self, newsroom):
        publishable = newsroom["folders"].folder("publishable")
        docs = {article.doc for article in newsroom["articles"]}
        assert docs <= set(publishable.contents())

    def test_folder_incremental_equals_rescan(self, newsroom):
        for folder in newsroom["folders"].folders():
            incremental = set(folder.contents())
            folder.revalidate()
            assert incremental == set(folder.contents()), folder.name

    def test_lineage_recorded_for_wire_and_cross_pastes(self, newsroom):
        server = newsroom["server"]
        lineage = LineageGraph(server.db)
        graph = lineage.build()
        kinds = {attrs["kind"] for __, attrs in graph.nodes(data=True)}
        assert "external" in kinds
        assert graph.number_of_edges() >= 4

    def test_search_finds_live_content(self, newsroom):
        from repro.mining.features import tokenize
        engine = SearchEngine(newsroom["server"].db, newsroom["meta"])
        # Pick a token that provably survived the shift and find its doc.
        article = max(newsroom["articles"], key=lambda a: a.length())
        tokens = tokenize(article.text())
        assert tokens, "article ended the shift empty"
        needle = max(set(tokens), key=tokens.count)
        hits = engine.search(f"{needle} state:final")
        assert article.doc in {hit.doc for hit in hits}
        # Ranking options all work on the soaked corpus.
        for ranking in ("relevance", "newest", "most_cited", "most_read"):
            assert engine.search(needle, ranking=ranking)

    def test_metadata_profiles_consistent(self, newsroom):
        meta = newsroom["meta"]
        for article in newsroom["articles"]:
            profile = meta.document_profile(article.doc)
            visible = sum(
                c["visible"] for c in profile["contributions"].values())
            assert visible == article.length()
            prov = profile["provenance"]
            assert sum(prov.values()) == article.length()

    def test_recovery_reproduces_the_newsroom(self, newsroom):
        from repro.db import recover
        from repro.text import DocumentStore
        server = newsroom["server"]
        recovered = recover(server.db.wal.records())
        store = DocumentStore(recovered)
        for article in newsroom["articles"]:
            clone = store.handle(article.doc)
            assert clone.text() == article.text()
            assert clone.check_integrity() == []

    def test_no_trigger_errors_leaked(self, newsroom):
        assert newsroom["server"].db.triggers.errors == []

    def test_undo_still_functional_after_soak(self, newsroom):
        server = newsroom["server"]
        session = newsroom["sessions"]["ana"]
        article = newsroom["articles"][0]
        before = article.text()
        session.insert(article.doc, 0, "LATE EDIT ")
        session.undo(article.doc)
        assert article.text() == before

    def test_metrics_snapshot_covers_every_subsystem(self, newsroom):
        # The acceptance bar for the observability layer: after a full
        # shift, one Database.metrics_snapshot() call reports on every
        # subsystem, and emits only catalogued names.
        from repro.obs import unknown_names

        server = newsroom["server"]
        # Search metrics must not depend on which soak test ran first.
        SearchEngine(server.db).search("article")
        snapshot = server.db.metrics_snapshot()
        prefixes = {name.split(".", 1)[0] for name in snapshot}
        assert {"txn", "wal", "lock", "collab", "search"} <= prefixes
        assert unknown_names(snapshot) == []
        assert snapshot["txn.begun"]["value"] > 0
        assert snapshot["txn.committed"]["value"] > 0
        assert snapshot["txn.active"]["value"] == 0
        assert snapshot["wal.appends"]["value"] > 0
        assert snapshot["lock.acquired"]["value"] > 0
        assert snapshot["collab.operations"]["value"] > 0
        assert snapshot["collab.notifications"]["value"] > 0
        assert snapshot["search.queries"]["value"] > 0
        assert snapshot["txn.duration_seconds"]["count"] \
            == snapshot["txn.begun"]["value"]
