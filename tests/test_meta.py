"""Tests for the metadata collector and property manager."""

import pytest

from repro.clock import SimulatedClock
from repro.collab import CollaborationServer
from repro.db import Database
from repro.errors import UnknownDocumentError
from repro.meta import MetadataCollector, PropertyManager
from repro.text import DocumentStore


@pytest.fixture
def db():
    return Database("t", clock=SimulatedClock())


@pytest.fixture
def store(db):
    return DocumentStore(db)


@pytest.fixture
def meta(db):
    return MetadataCollector(db)


class TestCounters:
    def test_insert_delete_counters(self, db, store, meta):
        h = store.create("d", "ana", text="abc")
        h.delete_range(0, 1, "ana")
        counters = meta.edit_counters(h.doc)
        assert counters["inserts"] == 3
        assert counters["deletes"] == 1
        assert counters["commits"] == 2

    def test_counters_zero_for_unedited(self, db, meta):
        assert meta.edit_counters(db.new_oid("doc"))["inserts"] == 0

    def test_close_stops_counting(self, db, store, meta):
        h = store.create("d", "ana")
        meta.close()
        h.insert_text(0, "xyz", "ana")
        assert meta.edit_counters(h.doc)["inserts"] == 0


class TestContributions:
    def test_author_contributions(self, db, store, meta):
        h = store.create("d", "ana", text="aaaa")
        h.insert_text(4, "bb", "ben")
        h.delete_range(0, 1, "ben")  # deletes one of ana's chars
        contributions = meta.author_contributions(h.doc)
        assert contributions["ana"] == {
            "written": 4, "visible": 3, "deleted": 1,
        }
        assert contributions["ben"]["written"] == 2

    def test_char_provenance_typed_vs_pasted(self):
        server = CollaborationServer()
        server.register_user("ana")
        session = server.connect("ana")
        src = session.create_document("src", text="0123456789")
        dst = session.create_document("dst", text="typed")
        session.copy(src.doc, 0, 4)
        session.paste(dst.doc, 5)
        session.copy_external("ext", "mail")
        session.paste(dst.doc, 0)
        meta = MetadataCollector(server.db)
        prov = meta.char_provenance(dst.doc)
        assert prov == {"typed": 5, "pasted_internal": 4,
                        "pasted_external": 3}


class TestAccessQueries:
    def test_readers_and_writers(self, db, store, meta):
        h = store.create("d", "ana", text="x")
        store.open(h.doc, "ben")
        h.insert_text(0, "y", "cleo")
        assert meta.readers_of(h.doc) == {"ben"}
        assert "cleo" in meta.writers_of(h.doc)

    def test_readers_since(self, db, store, meta):
        h = store.create("d", "ana")
        store.open(h.doc, "ben")
        cutoff = db.now()
        store.open(h.doc, "cleo")
        assert meta.readers_of(h.doc, since=cutoff) == {"cleo"}

    def test_documents_touched_by(self, db, store, meta):
        h1 = store.create("d1", "ana", text="x")
        h2 = store.create("d2", "ben")
        store.open(h2.doc, "ana")
        docs_created = meta.documents_touched_by("ana", action="create")
        assert docs_created == {h1.doc}
        docs_read = meta.documents_touched_by("ana", action="read")
        assert docs_read == {h2.doc}

    def test_user_activity(self, db, store, meta):
        h = store.create("d", "ana", text="x")
        store.open(h.doc, "ana")
        activity = meta.user_activity("ana")
        assert activity["created"] == 1
        assert activity["read"] == 1
        assert activity["edited"] == 1  # the initial text insert


class TestCitations:
    def test_citation_counts(self):
        server = CollaborationServer()
        server.register_user("ana")
        session = server.connect("ana")
        src = session.create_document("src", text="0123456789")
        dst = session.create_document("dst", text="")
        session.copy(src.doc, 0, 3)
        session.paste(dst.doc, 0)
        session.copy(src.doc, 4, 3)
        session.paste(dst.doc, 0)
        meta = MetadataCollector(server.db)
        assert meta.citation_counts() == {src.doc: 2}

    def test_self_paste_not_a_citation(self):
        server = CollaborationServer()
        server.register_user("ana")
        session = server.connect("ana")
        doc = session.create_document("d", text="0123456789")
        session.copy(doc.doc, 0, 3)
        session.paste(doc.doc, 5)
        meta = MetadataCollector(server.db)
        assert meta.citation_counts() == {}


class TestProfile:
    def test_profile_shape(self, db, store, meta):
        h = store.create("report", "ana", text="hello",
                         props={"topic": "db"})
        store.open(h.doc, "ben")
        profile = meta.document_profile(h.doc)
        assert profile["name"] == "report"
        assert profile["creator"] == "ana"
        assert profile["size"] == 5
        assert profile["readers"] == ["ben"]
        assert profile["authors"] == ["ana"]
        assert profile["props"] == {"topic": "db"}
        assert profile["provenance"]["typed"] == 5

    def test_profile_unknown_doc(self, db, meta):
        with pytest.raises(UnknownDocumentError):
            meta.document_profile(db.new_oid("doc"))


class TestProperties:
    def test_char_property_roundtrip(self, db, store):
        props = PropertyManager(db)
        h = store.create("d", "ana", text="abc")
        oid = h.char_oid_at(1)
        props.set_char_property(oid, "reviewed", True, "ben")
        assert props.get_char_property(oid, "reviewed") is True
        assert props.get_char_property(oid, "missing", 42) == 42

    def test_chars_with_property(self, db, store):
        props = PropertyManager(db)
        h = store.create("d", "ana", text="abc")
        props.set_char_property(h.char_oid_at(0), "mark", "x", "ana")
        props.set_char_property(h.char_oid_at(2), "mark", "y", "ana")
        assert len(props.chars_with_property(h.doc, "mark")) == 2
        assert props.chars_with_property(h.doc, "mark", "y") == \
            [h.char_oid_at(2)]

    def test_documents_with_property(self, db, store):
        props = PropertyManager(db)
        h1 = store.create("d1", "ana", props={"project": "x"})
        store.create("d2", "ana", props={"project": "y"})
        store.create("d3", "ana")
        assert set(props.documents_with_property("project")) == \
            {h1.doc} | {d["doc"] for d in store.find_by_name("d2")}
        assert props.documents_with_property("project", "x") == [h1.doc]

    def test_get_document_property(self, db, store):
        props = PropertyManager(db)
        h = store.create("d", "ana", props={"a": 1})
        assert props.get_document_property(h.doc, "a") == 1
        assert props.get_document_property(h.doc, "b", "dflt") == "dflt"


class TestFeedDrivenCollector:
    """Regressions for the changefeed refactor: the collector counts
    physical purges through delete before-images."""

    def test_delete_document_counts_purged_chars(self, db, store, meta):
        h = store.create("d", "ana", text="abc")
        assert meta.edit_counters(h.doc)["purged_chars"] == 0
        store.delete_document(h.doc, "ana")
        assert meta.edit_counters(h.doc)["purged_chars"] == 3

    def test_logical_deletes_do_not_count_as_purges(self, db, store, meta):
        h = store.create("d", "ana", text="abc")
        h.delete_range(0, 1, "ana")  # tombstone, row survives
        counters = meta.edit_counters(h.doc)
        assert counters["deletes"] == 1
        assert counters["purged_chars"] == 0

    def test_collector_close_unsubscribes(self, db, store, meta):
        names = {s.name for s in db.changefeed().subscriptions()}
        assert any(n.startswith("meta-collector") for n in names)
        meta.close()
        names = {s.name for s in db.changefeed().subscriptions()}
        assert not any(n.startswith("meta-collector") for n in names)
        h = store.create("after", "ana", text="x")  # must not reach it
        assert meta.edit_counters(h.doc)["inserts"] == 0
