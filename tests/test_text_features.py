"""Tests for layout/styles, structure, objects, notes and versioning."""

import pytest

from repro.db import Database
from repro.errors import LayoutError, StructureError, TextError
from repro.text import (
    DocumentStore,
    NoteManager,
    ObjectManager,
    StructureManager,
    StyleManager,
    VersionManager,
    render_ansi,
)


@pytest.fixture
def db():
    return Database("t")


@pytest.fixture
def store(db):
    return DocumentStore(db)


@pytest.fixture
def styles(db):
    return StyleManager(db)


@pytest.fixture
def structure(db):
    return StructureManager(db)


class TestStyles:
    def test_define_and_get(self, styles):
        oid = styles.define_style("emph", {"italic": True}, "ana")
        row = styles.get_style(oid)
        assert row["name"] == "emph"
        assert row["attrs"] == {"italic": True}

    def test_unknown_attr_rejected(self, styles):
        with pytest.raises(LayoutError):
            styles.define_style("bad", {"blink": True}, "ana")

    def test_wrong_attr_type_rejected(self, styles):
        with pytest.raises(LayoutError):
            styles.define_style("bad", {"bold": "yes"}, "ana")

    def test_local_style_shadows_global(self, db, styles, store):
        h = store.create("d", "ana")
        styles.define_style("body", {"size": 10}, "ana")
        styles.define_style("body", {"size": 12}, "ana", doc=h.doc)
        found = styles.find_style("body", doc=h.doc)
        assert found["attrs"]["size"] == 12
        assert styles.find_style("body")["attrs"]["size"] == 10

    def test_styles_for_includes_global(self, db, styles, store):
        h = store.create("d", "ana")
        styles.define_style("g", {"bold": True}, "ana")
        styles.define_style("l", {"italic": True}, "ana", doc=h.doc)
        names = {s["name"] for s in styles.styles_for(h.doc)}
        assert names == {"g", "l"}

    def test_effective_attrs_none(self, styles):
        assert styles.effective_attrs(None) == {}

    def test_render_ansi(self, db, styles, store):
        h = store.create("d", "ana", text="ab")
        bold = styles.define_style("b", {"bold": True}, "ana")
        h.apply_style(0, 1, bold, "ana")
        out = render_ansi(h, styles)
        assert out == "\x1b[1ma\x1b[0mb"


class TestTemplates:
    def test_instantiate_creates_local_styles(self, db, styles, store):
        template = styles.define_template(
            "report", "ana",
            styles=[{"name": "h1", "attrs": {"bold": True, "size": 16}}],
            structure=[{"kind": "section", "label": "Introduction"}],
        )
        h = store.create("d", "ana", template=template)
        created = styles.instantiate_template(template, h.doc, "ana")
        assert "h1" in created
        assert styles.get_style(created["h1"])["doc"] == h.doc

    def test_get_template_unknown(self, db, styles):
        with pytest.raises(LayoutError):
            styles.get_template(db.new_oid("template"))


class TestStructure:
    def test_outline(self, structure, store):
        h = store.create("d", "ana")
        sec = structure.add_node(h.doc, "section", "ana", label="Intro")
        structure.add_node(h.doc, "paragraph", "ana", parent=sec)
        structure.add_node(h.doc, "paragraph", "ana", parent=sec)
        out = structure.outline_text(h.doc)
        assert out.splitlines() == [
            "- section Intro", "  - paragraph", "  - paragraph",
        ]

    def test_unknown_kind_rejected(self, structure, store):
        h = store.create("d", "ana")
        with pytest.raises(StructureError):
            structure.add_node(h.doc, "chapter", "ana")

    def test_cross_document_parent_rejected(self, structure, store):
        h1 = store.create("d1", "ana")
        h2 = store.create("d2", "ana")
        sec = structure.add_node(h1.doc, "section", "ana")
        with pytest.raises(StructureError):
            structure.add_node(h2.doc, "paragraph", "ana", parent=sec)

    def test_positions_autoassigned(self, structure, store):
        h = store.create("d", "ana")
        a = structure.add_node(h.doc, "section", "ana")
        b = structure.add_node(h.doc, "section", "ana")
        roots = structure.roots(h.doc)
        assert [r["node"] for r in roots] == [a, b]

    def test_move_rejects_cycle(self, structure, store):
        h = store.create("d", "ana")
        a = structure.add_node(h.doc, "section", "ana")
        b = structure.add_node(h.doc, "section", "ana", parent=a)
        with pytest.raises(StructureError):
            structure.move_node(a, b, 0)

    def test_move_reorders(self, structure, store):
        h = store.create("d", "ana")
        a = structure.add_node(h.doc, "section", "ana")
        b = structure.add_node(h.doc, "section", "ana")
        structure.move_node(b, None, -1)
        roots = structure.roots(h.doc)
        assert [r["node"] for r in roots] == [b, a]

    def test_remove_requires_recursive(self, structure, store):
        h = store.create("d", "ana")
        a = structure.add_node(h.doc, "section", "ana")
        structure.add_node(h.doc, "paragraph", "ana", parent=a)
        with pytest.raises(StructureError):
            structure.remove_node(a)
        assert structure.remove_node(a, recursive=True) == 2
        assert structure.roots(h.doc) == []

    def test_range_survives_concurrent_insert(self, structure, store):
        h = store.create("d", "ana", text="0123456789")
        sec = structure.add_node(h.doc, "section", "ana")
        structure.set_range(sec, h.char_oid_at(2), h.char_oid_at(5))
        assert structure.node_text(h, sec) == "2345"
        h.insert_text(0, "XXX", "ben")   # shift everything right
        assert structure.node_text(h, sec) == "2345"
        h.insert_text(6, "!", "ben")     # inside the range (after '2')
        assert structure.node_text(h, sec) == "2!345"

    def test_containing_nodes(self, structure, store):
        h = store.create("d", "ana", text="abcdef")
        sec = structure.add_node(h.doc, "section", "ana")
        structure.set_range(sec, h.char_oid_at(1), h.char_oid_at(4))
        hits = structure.containing_nodes(h, 2)
        assert [r["node"] for r in hits] == [sec]
        assert structure.containing_nodes(h, 5) == []


class TestObjects:
    def test_insert_image_and_position(self, db, store):
        objects = ObjectManager(db)
        h = store.create("d", "ana", text="hello")
        obj = objects.insert_image(h, 2, "ana", name="fig.png",
                                   width=64, height=48)
        positions = objects.objects_with_positions(h)
        assert positions[0][0] == 2
        assert positions[0][1]["obj"] == obj

    def test_image_floats_with_edits(self, db, store):
        objects = ObjectManager(db)
        h = store.create("d", "ana", text="hello")
        objects.insert_image(h, 2, "ana", name="f", width=1, height=1)
        h.insert_text(0, "say ", "ben")
        assert objects.objects_with_positions(h)[0][0] == 6

    def test_table_cells(self, db, store):
        objects = ObjectManager(db)
        h = store.create("d", "ana", text="x")
        tbl = objects.insert_table(h, 1, "ana", rows=2, cols=3)
        objects.set_cell(tbl, 1, 2, "v", "ben")
        assert objects.get(tbl)["data"]["cells"][1][2] == "v"

    def test_cell_bounds_checked(self, db, store):
        objects = ObjectManager(db)
        h = store.create("d", "ana", text="x")
        tbl = objects.insert_table(h, 0, "ana", rows=1, cols=1)
        with pytest.raises(TextError):
            objects.set_cell(tbl, 1, 0, "v", "ana")

    def test_add_row(self, db, store):
        objects = ObjectManager(db)
        h = store.create("d", "ana", text="x")
        tbl = objects.insert_table(h, 0, "ana", rows=1, cols=2)
        objects.add_row(tbl, "ana")
        data = objects.get(tbl)["data"]
        assert data["rows"] == 2 and len(data["cells"]) == 2

    def test_delete_and_restore(self, db, store):
        objects = ObjectManager(db)
        h = store.create("d", "ana", text="x")
        obj = objects.insert_image(h, 0, "ana", name="f", width=1, height=1)
        objects.delete_object(obj, "ana")
        assert objects.objects_in(h.doc) == []
        with pytest.raises(TextError):
            objects.set_cell(obj, 0, 0, "v", "ana")
        objects.restore_object(obj, "ana")
        assert len(objects.objects_in(h.doc)) == 1

    def test_invalid_dimensions(self, db, store):
        objects = ObjectManager(db)
        h = store.create("d", "ana", text="x")
        with pytest.raises(TextError):
            objects.insert_table(h, 0, "ana", rows=0, cols=2)

    def test_render_table(self, db, store):
        objects = ObjectManager(db)
        h = store.create("d", "ana", text="x")
        tbl = objects.insert_table(h, 0, "ana", rows=1, cols=2)
        objects.set_cell(tbl, 0, 0, "hi", "ana")
        text = objects.render_table(tbl)
        assert "| hi |" in text


class TestNotes:
    def test_add_and_position(self, db, store):
        notes = NoteManager(db)
        h = store.create("d", "ana", text="hello")
        note = notes.add_note(h, 1, "typo?", "ben")
        positions = notes.notes_with_positions(h)
        assert positions == [(1, notes.get(note))]

    def test_note_floats(self, db, store):
        notes = NoteManager(db)
        h = store.create("d", "ana", text="hello")
        notes.add_note(h, 1, "n", "ben")
        h.insert_text(0, ">>", "ana")
        assert notes.notes_with_positions(h)[0][0] == 3

    def test_orphaned_note(self, db, store):
        notes = NoteManager(db)
        h = store.create("d", "ana", text="hello")
        note = notes.add_note(h, 1, "n", "ben")
        h.delete_range(1, 1, "ana")
        assert notes.notes_with_positions(h)[0][0] is None
        # Context still available through deleted anchors.
        assert notes.anchor_context(note, 2) != ""

    def test_resolve_and_reopen(self, db, store):
        notes = NoteManager(db)
        h = store.create("d", "ana", text="x")
        note = notes.add_note(h, 0, "n", "ben")
        notes.resolve(note, "ana")
        assert notes.notes_in(h.doc) == []
        assert len(notes.notes_in(h.doc, include_resolved=True)) == 1
        notes.reopen(note, "ana")
        assert len(notes.notes_in(h.doc)) == 1

    def test_anchor_context_window(self, db, store):
        notes = NoteManager(db)
        h = store.create("d", "ana", text="abcdefghij")
        note = notes.add_note(h, 5, "n", "ben")
        assert notes.anchor_context(note, 2) == "defgh"


class TestVersioning:
    def test_tag_and_text_at(self, db, store):
        versions = VersionManager(db)
        h = store.create("d", "ana", text="v1 text")
        v1 = versions.tag(h, "v1", "ana")
        h.insert_text(7, "!", "ana")
        assert versions.text_at(v1) == "v1 text"
        assert h.text() == "v1 text!"

    def test_diff(self, db, store):
        versions = VersionManager(db)
        h = store.create("d", "ana", text="abc")
        v1 = versions.tag(h, "v1", "ana")
        h.delete_range(0, 1, "ana")
        h.insert_text(2, "XY", "ana")
        v2 = versions.tag(h, "v2", "ana")
        diff = versions.diff(v1, v2)
        assert len(diff.added) == 2
        assert len(diff.removed) == 1
        assert not diff.is_empty

    def test_restore_roundtrip(self, db, store):
        versions = VersionManager(db)
        h = store.create("d", "ana", text="original")
        v1 = versions.tag(h, "v1", "ana")
        h.delete_range(0, 4, "ben")
        h.insert_text(0, "MODIFIED ", "ben")
        result = versions.restore(h, v1, "ana")
        assert h.text() == "original"
        assert result["deleted"] == 9 and result["restored"] == 4

    def test_restore_foreign_version_rejected(self, db, store):
        versions = VersionManager(db)
        h1 = store.create("d1", "ana", text="a")
        h2 = store.create("d2", "ana", text="b")
        v = versions.tag(h1, "v", "ana")
        with pytest.raises(TextError):
            versions.restore(h2, v, "ana")

    def test_versions_listed_in_order(self, db, store):
        versions = VersionManager(db)
        h = store.create("d", "ana", text="a")
        versions.tag(h, "first", "ana")
        versions.tag(h, "second", "ana")
        names = [v["name"] for v in versions.versions_of(h.doc)]
        assert names == ["first", "second"]
        assert versions.find(h.doc, "second") is not None
        assert versions.find(h.doc, "zzz") is None
