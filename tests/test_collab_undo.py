"""Tests for local and global undo/redo."""

import pytest

from repro.collab import CollaborationServer
from repro.errors import UndoError


@pytest.fixture
def server():
    server = CollaborationServer()
    for user in ("ana", "ben"):
        server.register_user(user)
    return server


@pytest.fixture
def setup(server):
    s1 = server.connect("ana")
    s2 = server.connect("ben")
    handle = s1.create_document("d", text="base ")
    s2.open(handle.doc)
    return server, s1, s2, handle.doc


class TestLocalUndo:
    def test_undo_own_insert(self, setup):
        server, s1, s2, doc = setup
        s1.insert(doc, 5, "mine")
        s1.undo(doc)
        assert s1.handle(doc).text() == "base "

    def test_undo_skips_other_users_ops(self, setup):
        server, s1, s2, doc = setup
        s1.insert(doc, 5, "ana1 ")
        s2.insert(doc, 0, "ben1 ")
        # ana's local undo reverts her op even though ben edited after.
        s1.undo(doc)
        assert s1.handle(doc).text() == "ben1 base "

    def test_undo_delete_restores(self, setup):
        server, s1, s2, doc = setup
        s1.delete(doc, 0, 4)
        assert s1.handle(doc).text() == " "
        s1.undo(doc)
        assert s1.handle(doc).text() == "base "

    def test_undo_style_restores_previous(self, setup):
        server, s1, s2, doc = setup
        bold = server.styles.define_style("b", {"bold": True}, "ana")
        italic = server.styles.define_style("i", {"italic": True}, "ana")
        s1.apply_style(doc, 0, 4, bold)
        s1.apply_style(doc, 0, 4, italic)
        s1.undo(doc)
        runs = s1.handle(doc).styled_runs()
        assert runs[0][1] == bold
        s1.undo(doc)
        assert s1.handle(doc).styled_runs()[0][1] is None

    def test_nothing_to_undo(self, setup):
        server, s1, s2, doc = setup
        with pytest.raises(UndoError):
            s2.undo(doc)

    def test_undo_stack_depth(self, setup):
        server, s1, s2, doc = setup
        s1.insert(doc, 0, "a")
        s1.insert(doc, 0, "b")
        assert server.undo.undo_depth(doc, "ana") == 2
        s1.undo(doc)
        assert server.undo.undo_depth(doc, "ana") == 1
        s1.undo(doc)
        with pytest.raises(UndoError):
            s1.undo(doc)


class TestRedo:
    def test_redo_roundtrip(self, setup):
        server, s1, s2, doc = setup
        s1.insert(doc, 5, "x")
        s1.undo(doc)
        s1.redo(doc)
        assert s1.handle(doc).text() == "base x"

    def test_redo_cleared_by_new_op(self, setup):
        server, s1, s2, doc = setup
        s1.insert(doc, 5, "x")
        s1.undo(doc)
        s1.insert(doc, 5, "y")
        with pytest.raises(UndoError):
            s1.redo(doc)

    def test_redo_empty(self, setup):
        server, s1, s2, doc = setup
        with pytest.raises(UndoError):
            s1.redo(doc)

    def test_undo_redo_undo_chain(self, setup):
        server, s1, s2, doc = setup
        s1.insert(doc, 5, "1")
        s1.insert(doc, 6, "2")
        s1.undo(doc)
        s1.undo(doc)
        s1.redo(doc)
        assert s1.handle(doc).text() == "base 1"
        s1.redo(doc)
        assert s1.handle(doc).text() == "base 12"


class TestGlobalUndo:
    def test_global_undo_reverts_any_users_op(self, setup):
        server, s1, s2, doc = setup
        s1.insert(doc, 5, "ana ")
        s2.insert(doc, 0, "ben ")
        # ana globally undoes ben's operation (the most recent).
        s1.undo_global(doc)
        assert s1.handle(doc).text() == "base ana "

    def test_global_redo(self, setup):
        server, s1, s2, doc = setup
        s2.insert(doc, 0, "ben ")
        s1.undo_global(doc)
        s1.redo_global(doc)
        assert s1.handle(doc).text() == "ben base "

    def test_global_undo_walks_back_through_history(self, setup):
        server, s1, s2, doc = setup
        s1.insert(doc, 5, "1")
        s2.insert(doc, 6, "2")
        s1.insert(doc, 7, "3")
        for __ in range(3):
            s2.undo_global(doc)
        assert s1.handle(doc).text() == "base "

    def test_global_and_local_interplay(self, setup):
        server, s1, s2, doc = setup
        s1.insert(doc, 5, "A")
        s2.insert(doc, 6, "B")
        s1.undo(doc)          # removes A (ana's local)
        assert s1.handle(doc).text() == "base B"
        s2.undo_global(doc)   # most recent not-undone op is ben's B
        assert s1.handle(doc).text() == "base "

    def test_global_nothing_to_undo(self, setup):
        server, s1, s2, doc = setup
        with pytest.raises(UndoError):
            s1.undo_global(doc)


class TestUndoUnderConcurrency:
    def test_undo_insert_after_remote_edits_around_it(self, setup):
        server, s1, s2, doc = setup
        oids = s1.insert(doc, 5, "XYZ")
        s2.insert(doc, 0, ">>")       # shifts everything
        s2.insert(doc, 10, "<<")      # inserts inside/after
        s1.undo(doc)                  # removes exactly XYZ wherever it is
        text = s1.handle(doc).text()
        assert "X" not in text and "Y" not in text and "Z" not in text
        assert s1.handle(doc).check_integrity() == []

    def test_history_log_records_all_ops(self, setup):
        server, s1, s2, doc = setup
        s1.insert(doc, 0, "a")
        s2.insert(doc, 0, "b")
        s1.delete(doc, 0, 1)
        history = server.undo.history(doc)
        assert [r.kind for r in history] == ["insert", "insert", "delete"]
        assert [r.user for r in history] == ["ana", "ben", "ana"]


class TestSizeAccountingUnderOverlappingUndo:
    def test_undo_of_insert_after_remote_delete_keeps_size_exact(
            self, setup):
        server, s1, s2, doc = setup
        s1.insert(doc, 5, "XY")
        s2.delete(doc, 5, 2)       # ben deletes ana's fresh chars
        s1.undo(doc)               # ana undoes her insert (already gone)
        handle = s1.handle(doc)
        assert server.documents.meta(doc)["size"] == handle.length()
        s1.redo(doc)               # resurrects XY exactly once
        assert handle.text() == "base XY"
        assert server.documents.meta(doc)["size"] == handle.length()

    def test_double_undelete_is_idempotent(self, setup):
        server, s1, s2, doc = setup
        oids = s1.delete(doc, 0, 2)
        handle = s1.handle(doc)
        handle.undelete_chars(oids, "ana")
        handle.undelete_chars(oids, "ana")   # second time: no-op
        assert handle.text() == "base "
        assert server.documents.meta(doc)["size"] == handle.length()
