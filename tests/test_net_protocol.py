"""Property tests for the wire protocol + a frame fuzzer vs a live server.

Two layers:

* **pure** — hypothesis round-trips every envelope type through
  ``encode_frame`` → ``FrameDecoder`` under arbitrary fragmentation,
  and checks the strict-decode contract (missing fields, unknown
  types, hostile length headers all raise ProtocolError);
* **live** — malformed, truncated and randomly fuzzed byte streams
  against a real :class:`~repro.net.ServerThread` socket: every attack
  must end in a clean fatal ERROR and/or a close — never a crash, a
  hang, or a wedged server (a well-behaved client must still get
  service afterwards).
"""

from __future__ import annotations

import json
import random
import socket
import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.collab import CollaborationServer
from repro.errors import ProtocolError
from repro.ids import Oid
from repro.net import (
    Ack,
    Awareness,
    Bye,
    Error,
    FrameDecoder,
    Health,
    HealthReply,
    Hello,
    NetworkClient,
    Notify,
    Op,
    Ping,
    Pong,
    ServerThread,
    Stats,
    StatsReply,
    Welcome,
    decode_envelope,
    encode_frame,
)
from repro.net.protocol import ENVELOPE_TYPES, MAX_FRAME_BYTES

# ---------------------------------------------------------------------------
# Strategies: values that survive the JSON + tagging round trip
# ---------------------------------------------------------------------------

oids = st.builds(
    Oid,
    st.text(st.characters(codec="ascii", min_codepoint=97,
                          max_codepoint=122), min_size=1, max_size=6),
    st.integers(min_value=0, max_value=10 ** 9),
)

scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(10 ** 12), max_value=10 ** 12),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=20),
    oids,
    st.binary(max_size=16),
)

#: Keys that must not make a dict look like an Oid/bytes tag.
keys = st.text(st.characters(codec="ascii", min_codepoint=97,
                             max_codepoint=122), min_size=1, max_size=8)

jsonish = st.recursive(
    scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(keys, children, max_size=4),
    ),
    max_leaves=12,
)

row_dicts = st.dictionaries(keys, scalars, max_size=6)

echo_deltas = st.builds(
    lambda doc, seq, rows: {"doc": doc, "rep_seq": seq, "rows": rows},
    oids, st.integers(min_value=0, max_value=10 ** 6),
    st.lists(row_dicts, max_size=3).map(tuple),
)

envelopes = st.one_of(
    st.builds(Hello, user=st.text(min_size=1, max_size=12),
              token=st.none() | st.text(max_size=8),
              editor=st.text(max_size=8), os_name=st.text(max_size=8),
              register=st.booleans()),
    st.builds(Welcome, session_id=st.integers(0, 10 ** 6),
              node=st.text(max_size=8)),
    st.builds(Op, op_seq=st.integers(0, 10 ** 9),
              verb=st.text(min_size=1, max_size=16),
              args=st.dictionaries(keys, jsonish, max_size=4),
              trace_id=st.none() | st.integers(0, 10 ** 9),
              parent_span=st.none() | st.integers(0, 10 ** 9)),
    st.builds(Ack, op_seq=st.integers(0, 10 ** 9), result=jsonish,
              lsn=st.integers(0, 10 ** 9),
              echo=st.lists(echo_deltas, max_size=3).map(tuple)),
    st.builds(Error, code=st.text(min_size=1, max_size=20),
              message=st.text(max_size=40),
              op_seq=st.none() | st.integers(0, 10 ** 9),
              fatal=st.booleans()),
    st.builds(Notify, doc=oids, rep_seq=st.integers(0, 10 ** 9),
              rows=st.lists(row_dicts, max_size=4).map(tuple),
              tables=st.lists(st.text(min_size=1, max_size=10),
                              max_size=3).map(tuple),
              n_changes=st.integers(0, 10 ** 4),
              origin_session=st.none() | st.integers(0, 10 ** 6),
              origin_user=st.none() | st.text(max_size=10),
              at=st.floats(0, 2e9), sent_at=st.floats(0, 2e9),
              trace_id=st.none() | st.integers(0, 10 ** 9),
              parent_span=st.none() | st.integers(0, 10 ** 9)),
    st.builds(Awareness, doc=oids, anchor=st.none() | oids,
              selection=st.lists(oids, max_size=4).map(tuple),
              user=st.text(max_size=10),
              session_id=st.integers(0, 10 ** 6)),
    st.builds(Ping, nonce=st.integers(0, 10 ** 9), at=st.floats(0, 2e9)),
    st.builds(Pong, nonce=st.integers(0, 10 ** 9), at=st.floats(0, 2e9)),
    st.builds(Bye, reason=st.text(max_size=20)),
    st.builds(Stats, format=st.sampled_from(("json", "prom")),
              series=st.booleans(),
              token=st.none() | st.text(max_size=8)),
    st.one_of(
        st.builds(StatsReply, format=st.just("json"), payload=jsonish,
                  at=st.floats(0, 2e9)),
        st.builds(StatsReply, format=st.just("prom"),
                  payload=st.text(max_size=40), at=st.floats(0, 2e9)),
    ),
    st.builds(Health, token=st.none() | st.text(max_size=8)),
    st.builds(HealthReply,
              status=st.sampled_from(("ok", "degraded", "unhealthy")),
              checks=st.lists(
                  st.dictionaries(keys, scalars, max_size=4),
                  max_size=3).map(tuple),
              at=st.floats(0, 2e9)),
)


class TestRoundTrip:
    @settings(max_examples=300)
    @given(envelopes)
    def test_every_envelope_round_trips(self, envelope):
        decoder = FrameDecoder()
        out = list(decoder.feed(encode_frame(envelope)))
        assert out == [envelope]
        assert decoder.pending_bytes == 0

    @settings(max_examples=100)
    @given(st.lists(envelopes, min_size=1, max_size=6),
           st.integers(min_value=1, max_value=7))
    def test_fragmentation_is_invisible(self, batch, chunk):
        """Frames survive arriving a few bytes at a time, coalesced."""
        stream = b"".join(encode_frame(e) for e in batch)
        decoder = FrameDecoder()
        out = []
        for i in range(0, len(stream), chunk):
            out.extend(decoder.feed(stream[i:i + chunk]))
        assert out == batch
        assert decoder.pending_bytes == 0

    def test_envelope_registry_is_total(self):
        """Every concrete envelope class decodes via the registry."""
        assert set(ENVELOPE_TYPES) == {
            "hello", "welcome", "op", "ack", "error", "notify",
            "awareness", "ping", "pong", "bye",
            "stats", "stats_reply", "health", "health_reply",
            "subscribe", "wal_segment", "repl_ack"}


class TestStrictDecode:
    @pytest.mark.parametrize("payload", [
        b"not json at all",
        b"[1,2,3]",
        b'"just a string"',
        b"{}",
        b'{"t": "no-such-type"}',
        b'{"t": 42}',
        b'{"t": "op"}',                       # missing op_seq + verb
        b'{"t": "op", "op_seq": 1}',          # missing verb
        b'{"t": "op", "op_seq": 1, "verb": ""}',
        b'{"t": "op", "op_seq": "x", "verb": "insert"}',
        b'{"t": "hello", "user": ""}',
        b'{"t": "hello", "user": 7}',
        b'{"t": "ack", "op_seq": 1, "lsn": "x"}',
        b'{"t": "notify", "doc": null, "rep_seq": "x"}',
        b'{"t": "error", "code": ""}',
        b'\xff\xfe garbage bytes',
    ])
    def test_bad_payload_raises(self, payload):
        decoder = FrameDecoder()
        frame = struct.pack("!I", len(payload)) + payload
        with pytest.raises(ProtocolError):
            list(decoder.feed(frame))

    def test_zero_length_frame(self):
        with pytest.raises(ProtocolError, match="zero-length"):
            list(FrameDecoder().feed(struct.pack("!I", 0)))

    def test_hostile_length_header(self):
        """A 4 GiB declared length must fail before buffering anything."""
        with pytest.raises(ProtocolError, match="exceeds"):
            list(FrameDecoder().feed(struct.pack("!I", 0xFFFFFFFF)))

    def test_oversized_encode_rejected(self):
        with pytest.raises(ProtocolError, match="exceeds"):
            encode_frame(Op(op_seq=1, verb="insert",
                            args={"text": "x" * (MAX_FRAME_BYTES + 1)}))

    def test_partial_frame_never_yields(self):
        frame = encode_frame(Ping(nonce=7))
        decoder = FrameDecoder()
        assert list(decoder.feed(frame[:-1])) == []
        assert decoder.pending_bytes == len(frame) - 1

    def test_unknown_error_code_falls_back(self):
        from repro.errors import AccessDenied, NetError
        from repro.net import error_class
        assert error_class("AccessDenied") is AccessDenied
        assert error_class("NoSuchErrorClass") is NetError
        assert error_class("Oid") is NetError  # not a TendaxError

    def test_decode_envelope_rejects_non_dict(self):
        with pytest.raises(ProtocolError):
            decode_envelope([1, 2, 3])


# ---------------------------------------------------------------------------
# Live-socket fuzzing
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def net_server():
    collab = CollaborationServer()
    collab.register_user("ana")
    with ServerThread(collab) as server:
        yield server


def _attack(server, blob: bytes, timeout: float = 5.0):
    """Send ``blob`` raw; return the envelopes the server answered with.

    The contract under attack: the server may answer (typically one
    fatal ERROR) but must always close the connection — a hang here
    fails the test via the socket timeout.
    """
    sock = socket.create_connection(("127.0.0.1", server.port),
                                    timeout=timeout)
    decoder = FrameDecoder()
    received = []
    try:
        sock.sendall(blob)
        sock.shutdown(socket.SHUT_WR)
        while True:
            data = sock.recv(65536)
            if not data:
                return received
            received.extend(decoder.feed(data))
    finally:
        sock.close()


def _frame(payload: bytes) -> bytes:
    return struct.pack("!I", len(payload)) + payload


class TestLiveFuzz:
    @pytest.mark.parametrize("blob", [
        b"GET / HTTP/1.1\r\n\r\n",
        _frame(b"not json"),
        _frame(b"{}"),
        _frame(b'{"t": "no-such-type"}'),
        _frame(b'{"t": "hello", "user": ""}'),
        struct.pack("!I", 0),
        struct.pack("!I", 0xFFFFFFFF) + b"x" * 64,
        encode_frame(Op(op_seq=1, verb="insert")),   # op before hello
        encode_frame(Ack(op_seq=1)),                 # server-only frame
        encode_frame(Ping()),                        # ping before hello
    ], ids=["http", "notjson", "empty-obj", "unknown-type", "bad-hello",
            "zero-len", "hostile-len", "op-first", "ack-first",
            "ping-first"])
    def test_malformed_first_frame_closes_cleanly(self, net_server, blob):
        received = _attack(net_server, blob)
        # Either a fatal ERROR envelope or an immediate close; never a
        # crash (the module-scoped server keeps serving later tests).
        for envelope in received:
            assert isinstance(envelope, Error)
            assert envelope.fatal

    def test_truncated_frame_then_close_reaps_connection(self, net_server):
        frame = encode_frame(Hello(user="ana"))
        _attack(net_server, frame[:len(frame) // 2])
        client = NetworkClient("127.0.0.1", net_server.port, "ana")
        try:
            assert client.ping() < 5.0
        finally:
            client.close()

    def test_random_fuzz_never_wedges_the_server(self, net_server):
        rng = random.Random(1131)
        for _ in range(60):
            size = rng.randrange(1, 200)
            blob = bytes(rng.randrange(256) for _ in range(size))
            _attack(net_server, blob)
        for _ in range(20):
            # Structure-aware fuzz: valid header, mutated JSON payload.
            base = bytearray(json.dumps(
                {"t": rng.choice(list(ENVELOPE_TYPES)),
                 "user": "ana", "op_seq": 1}).encode())
            for _ in range(rng.randrange(1, 6)):
                base[rng.randrange(len(base))] = rng.randrange(256)
            _attack(net_server, _frame(bytes(base)))
        client = NetworkClient("127.0.0.1", net_server.port, "ana")
        try:
            assert client.ping() < 5.0
            stats = client.server_stats()
            assert stats["net"]["protocol_errors"] > 0
        finally:
            client.close()

    def test_malformed_after_handshake_is_fatal_for_that_conn_only(
            self, net_server):
        victim = socket.create_connection(
            ("127.0.0.1", net_server.port), timeout=5.0)
        bystander = NetworkClient("127.0.0.1", net_server.port, "ana")
        try:
            victim.sendall(encode_frame(Hello(user="ana")))
            decoder = FrameDecoder()
            welcomed = False
            while not welcomed:
                data = victim.recv(65536)
                assert data, "server closed during a valid handshake"
                for envelope in decoder.feed(data):
                    assert isinstance(envelope, Welcome)
                    welcomed = True
            victim.sendall(_frame(b"post-handshake garbage"))
            saw_fatal, closed = False, False
            while not closed:
                data = victim.recv(65536)
                if not data:
                    closed = True
                    break
                for envelope in decoder.feed(data):
                    if isinstance(envelope, Error) and envelope.fatal:
                        saw_fatal = True
            assert saw_fatal or closed
            assert bystander.ping() < 5.0  # unaffected neighbour
        finally:
            victim.close()
            bystander.close()
