"""Replication torture: promotion equivalence over seeded crash schedules.

The WAL-shipping acceptance property, seed by seed: a leader dies under
its crash plan (mid-group-commit, torn record, power loss), a follower
tails whatever file survived while dying under its *own* plan (mid-apply,
mid-mirror-record) and resuming from its mirror, and the database the
promoted follower finally serves must equal the one leader recovery
would have rebuilt — before and after collapsing MVCC version chains.

Same reproduction contract as ``test_crash_torture.py``:

    pytest tests/test_repl_torture.py -k seed17
    pytest tests/test_repl_torture.py --torture-schedules 500   # nightly

Replicated-schedule seeds are offset by 2000 so they exercise different
leader workloads than the engine torture over the same ``crash_seed``
range.
"""

from __future__ import annotations

import pytest

from repro.faults import (
    REPL_CRASH_POINTS,
    check_promotion_equivalence,
    run_replicated_schedule,
)

pytestmark = [
    pytest.mark.torture,
    # Torn tails (leader file and follower mirror) are the point of many
    # schedules; the recovery-side warning is expected noise here.
    pytest.mark.filterwarnings("ignore:skipping torn trailing WAL record"),
]

SEED_BASE = 2000


class TestReplicatedCrashTorture:
    def test_promotion_equivalence(self, crash_seed, tmp_path):
        outcome, promoted = run_replicated_schedule(
            SEED_BASE + crash_seed,
            str(tmp_path / "leader.wal"),
            str(tmp_path / "follower.wal"))
        try:
            check_promotion_equivalence(outcome, promoted)
        finally:
            promoted.close()

    def test_schedule_coverage_floor(self, tmp_path):
        """Fixed seeds must actually exercise the replication machinery.

        Pins forty schedules (independent of ``--torture-schedules``) and
        asserts the seed-derived plans hit every replication crash point
        and kill the follower often enough that resume-from-mirror is a
        load-bearing code path, not a lucky no-op.
        """
        follower_crashes = 0
        points_seen: set[str] = set()
        for seed in range(SEED_BASE, SEED_BASE + 40):
            base = tmp_path / f"s{seed}"
            base.mkdir()
            outcome, promoted = run_replicated_schedule(
                seed, str(base / "leader.wal"), str(base / "follower.wal"))
            try:
                check_promotion_equivalence(outcome, promoted)
            finally:
                promoted.close()
            follower_crashes += outcome.follower_crashes
            points_seen.update(outcome.follower_crash_points)
        assert points_seen == set(REPL_CRASH_POINTS), (
            f"replication crash points never fired: "
            f"{set(REPL_CRASH_POINTS) - points_seen}")
        assert follower_crashes >= 10, (
            f"only {follower_crashes} follower crashes across 40 "
            f"schedules — the plans are too gentle")
