"""Tests for the command-line interface."""

import io
from contextlib import redirect_stdout

import pytest

from repro.cli import build_parser, main


def run_cli(*argv: str) -> tuple[int, str]:
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        code = main(list(argv))
    return code, buffer.getvalue()


class TestCli:
    def test_lan_party(self):
        code, out = run_cli("lan-party", "--rounds", "10", "--seed", "1")
        assert code == 0
        assert "converged    : True" in out

    def test_portal(self):
        code, out = run_cli("portal", "--docs", "8", "--seed", "1")
        assert code == 0
        assert "# Dynamic folders" in out
        assert "# Data lineage (Fig. 1)" in out
        assert "# Document space (Fig. 2)" in out

    def test_feed_status(self):
        code, out = run_cli("feed-status", "--docs", "8", "--seed", "1")
        assert code == 0
        assert "feed seq" in out
        assert "search-index" in out
        assert "lag   0" in out

    def test_feed_status_json(self):
        import json
        code, out = run_cli("feed-status", "--docs", "8", "--seed", "1",
                            "--json")
        assert code == 0
        payload = json.loads(out)
        assert payload["seq"] > 0
        assert all(c["lag"] == 0 for c in payload["consumers"])

    def test_search(self):
        code, out = run_cli("search", "database", "--docs", "8",
                            "--seed", "1", "--limit", "2")
        assert code == 0
        assert "1." in out

    def test_search_ranking_option(self):
        code, out = run_cli("search", "database", "--docs", "8",
                            "--seed", "1", "--ranking", "newest")
        assert code == 0

    def test_stats(self):
        code, out = run_cli("stats", "--docs", "4", "--seed", "1")
        assert code == 0
        assert "tx_documents" in out
        assert "total rows" in out

    def test_stats_json_round_trips_metrics_snapshot(self):
        import json

        code, out = run_cli("stats", "--docs", "4", "--seed", "1", "--json")
        assert code == 0
        snapshot = json.loads(out)
        assert snapshot["txn.committed"]["type"] == "counter"
        assert snapshot["txn.committed"]["value"] > 0
        assert "txn.commit_seconds" in snapshot
        # The raw snapshot round-trips: dump → load → identical.
        assert json.loads(json.dumps(snapshot)) == snapshot

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestTraceCommand:
    def test_tree_format_shows_causal_chain(self):
        code, out = run_cli("trace", "--text", "hi")
        assert code == 0
        for name in ("collab.op", "txn", "wal.fsync", "collab.dispatch",
                     "collab.deliver", "collab.apply"):
            assert name in out

    def test_chrome_format_is_valid(self, tmp_path):
        import json

        from repro.obs import validate_chrome_trace

        path = tmp_path / "trace.json"
        code, out = run_cli("trace", "--text", "hi", "--format", "chrome",
                            "--out", str(path))
        assert code == 0
        payload = json.loads(path.read_text(encoding="utf-8"))
        assert validate_chrome_trace(payload) == []

    def test_jsonl_format_one_object_per_line(self):
        import json

        code, out = run_cli("trace", "--text", "a", "--format", "jsonl")
        assert code == 0
        lines = [line for line in out.splitlines() if line]
        assert all("span" in json.loads(line) for line in lines)

    def test_single_trace_selection_and_missing_id(self):
        code, out = run_cli("trace", "--text", "a", "--trace", "1")
        assert code == 0
        assert out.count("trace 1 ·") == 1
        code, __ = run_cli("trace", "--text", "a", "--trace", "99999")
        assert code == 1

    def test_slow_threshold_filters_to_slow_ops(self):
        # An absurd threshold: nothing qualifies, output is empty.
        code, out = run_cli("trace", "--text", "a", "--slow-ms", "60000")
        assert code == 0
        assert "collab.op" not in out

    def test_hold_seed_runs_fault_plan(self):
        code, out = run_cli("trace", "--text", "hi", "--hold-seed", "1311")
        assert code == 0
        assert "collab.apply" in out


@pytest.fixture
def watch_clock(monkeypatch):
    """Swap the CLI's watch clock for a simulated one: watch loops pace
    (and terminate) deterministically, with zero real sleeping."""
    from repro import cli
    from repro.clock import SimulatedClock

    clock = SimulatedClock(start=1_000.0, tick=0.25)
    monkeypatch.setattr(cli, "WATCH_CLOCK", clock)
    return clock


class TestTopCommand:
    def test_one_shot(self):
        code, out = run_cli("top", "--text", "hello")
        assert code == 0
        assert "hot paths" in out
        assert "slowest recent traces" in out
        assert "collab.replication_seconds" in out

    def test_watch_renders_each_refresh(self, watch_clock):
        code, out = run_cli("top", "--text", "ab", "--watch", "2")
        assert code == 0
        assert out.count("-- refresh") == 2

    def test_watch_pacing_rides_the_watch_clock(self, watch_clock):
        start = watch_clock.peek()
        code, out = run_cli("top", "--text", "ab", "--watch", "3",
                            "--interval", "30")
        assert code == 0
        # Two sleeps of 30 simulated seconds, zero real ones.
        assert watch_clock.peek() >= start + 60.0

    def test_watch_shows_trend_table(self, watch_clock):
        code, out = run_cli("top", "--text", "ab", "--watch", "2",
                            "--interval", "0")
        assert code == 0
        assert "trends:" in out
        assert "10s" in out and "5m" in out
        # The second refresh reuses the same server, so labelled series
        # from the first round are still in the registry.
        assert "collab.op_seconds{verb=InsertText}" in out


class TestRemoteCommands:
    @pytest.fixture
    def server(self):
        from repro.collab import CollaborationServer
        from repro.net import ServerThread

        collab = CollaborationServer()
        collab.register_user("typist")
        with ServerThread(collab, telemetry_interval=0.0) as thread:
            yield thread

    @pytest.fixture
    def busy_server(self, server):
        from repro.net import NetworkClient

        client = NetworkClient("127.0.0.1", server.port, "typist")
        session = client.session()
        doc = session.create_document("cli").doc
        for char in "hello":
            session.insert(doc, 0, char)
        server.server.telemetry.sample()
        try:
            yield server
        finally:
            client.close()

    def test_stats_remote_text(self, busy_server):
        code, out = run_cli("stats", "--remote",
                            f"127.0.0.1:{busy_server.port}")
        assert code == 0
        assert "engine metrics" in out
        assert "trends:" in out
        assert "net.ops" in out

    def test_stats_remote_json(self, busy_server):
        import json

        code, out = run_cli("stats", "--remote",
                            f"127.0.0.1:{busy_server.port}",
                            "--format", "json")
        assert code == 0
        payload = json.loads(out)
        assert payload["metrics"]["net.ops"]["value"] >= 5
        assert payload["telemetry"]["series"]

    def test_stats_remote_prom(self, busy_server):
        code, out = run_cli("stats", "--remote",
                            f"127.0.0.1:{busy_server.port}",
                            "--format", "prom")
        assert code == 0
        assert "# TYPE tendax_net_ops counter" in out

    def test_stats_remote_bad_address(self):
        with pytest.raises(SystemExit):
            run_cli("stats", "--remote", "nonsense")

    def test_dash_renders_health_and_trends(self, busy_server,
                                            watch_clock):
        code, out = run_cli("dash", "--port", str(busy_server.port),
                            "--watch", "2", "--interval", "60")
        assert code == 0
        assert out.count("== repro dash ==") == 2
        assert "health: OK" in out
        assert "-- refresh 2/2 --" in out

    def test_connect_watch_terminates_on_the_clock(self, busy_server,
                                                   watch_clock):
        # watch=1.0 simulated seconds tick away in a handful of polls;
        # with the system clock this would be a real one-second loop.
        code, out = run_cli("connect", "--port", str(busy_server.port),
                            "--user", "typist", "--doc", "cli",
                            "--watch", "1.0")
        assert code == 0
        assert "document     : cli" in out


class TestDumpLoad:
    def test_dump_then_load_roundtrip(self, tmp_path):
        out = str(tmp_path / "export")
        code, dump_out = run_cli("dump", "--docs", "2", "--seed", "1",
                                 "--out", out)
        assert code == 0
        files = sorted((tmp_path / "export").glob("*.tendax.json"))
        assert len(files) == 2
        code, load_out = run_cli("load", str(files[0]))
        assert code == 0
        assert "imported" in load_out
