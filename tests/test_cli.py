"""Tests for the command-line interface."""

import io
from contextlib import redirect_stdout

import pytest

from repro.cli import build_parser, main


def run_cli(*argv: str) -> tuple[int, str]:
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        code = main(list(argv))
    return code, buffer.getvalue()


class TestCli:
    def test_lan_party(self):
        code, out = run_cli("lan-party", "--rounds", "10", "--seed", "1")
        assert code == 0
        assert "converged    : True" in out

    def test_portal(self):
        code, out = run_cli("portal", "--docs", "8", "--seed", "1")
        assert code == 0
        assert "# Dynamic folders" in out
        assert "# Data lineage (Fig. 1)" in out
        assert "# Document space (Fig. 2)" in out

    def test_search(self):
        code, out = run_cli("search", "database", "--docs", "8",
                            "--seed", "1", "--limit", "2")
        assert code == 0
        assert "1." in out

    def test_search_ranking_option(self):
        code, out = run_cli("search", "database", "--docs", "8",
                            "--seed", "1", "--ranking", "newest")
        assert code == 0

    def test_stats(self):
        code, out = run_cli("stats", "--docs", "4", "--seed", "1")
        assert code == 0
        assert "tx_documents" in out
        assert "total rows" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestDumpLoad:
    def test_dump_then_load_roundtrip(self, tmp_path):
        out = str(tmp_path / "export")
        code, dump_out = run_cli("dump", "--docs", "2", "--seed", "1",
                                 "--out", out)
        assert code == 0
        files = sorted((tmp_path / "export").glob("*.tendax.json"))
        assert len(files) == 2
        code, load_out = run_cli("load", str(files[0]))
        assert code == 0
        assert "imported" in load_out
