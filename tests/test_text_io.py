"""Tests for document export/import and template application."""

import pytest

from repro.collab import CollaborationServer
from repro.db import Database
from repro.errors import TextError
from repro.text import (
    DocumentStore,
    NoteManager,
    ObjectManager,
    StructureManager,
    StyleManager,
    export_json,
    export_text,
    import_json,
)


@pytest.fixture
def db():
    return Database("src")


@pytest.fixture
def store(db):
    return DocumentStore(db)


@pytest.fixture
def target():
    return DocumentStore(Database("dst"))


class TestExport:
    def test_export_text(self, store):
        h = store.create("d", "ana", text="plain text")
        assert export_text(h) == "plain text"

    def test_export_json_shape(self, store):
        h = store.create("d", "ana", text="ab", props={"k": 1})
        payload = export_json(h)
        assert payload["format"] == 1
        assert payload["document"]["name"] == "d"
        assert payload["document"]["props"] == {"k": 1}
        assert len(payload["chars"]) == 2
        assert payload["chars"][0]["ch"] == "a"

    def test_export_includes_deleted_chars(self, store):
        h = store.create("d", "ana", text="abc")
        h.delete_range(1, 1, "ana")
        payload = export_json(h)
        assert len(payload["chars"]) == 3
        assert sum(1 for c in payload["chars"] if c["deleted"]) == 1


class TestImportRoundtrip:
    def test_text_preserved(self, store, target):
        h = store.create("d", "ana", text="hello world")
        h.insert_text(5, ",", "ben")
        h2 = import_json(target, export_json(h), "importer")
        assert h2.text() == "hello, world"
        assert h2.check_integrity() == []

    def test_metadata_preserved(self, store, target):
        h = store.create("d", "ana", text="ab")
        h.insert_text(2, "c", "ben")
        h2 = import_json(target, export_json(h), "importer")
        assert h2.authors() == {"ana": 2, "ben": 1}

    def test_deleted_chars_stay_deleted_but_present(self, store, target):
        h = store.create("d", "ana", text="abc")
        h.delete_range(0, 1, "ana")
        h2 = import_json(target, export_json(h), "importer")
        assert h2.text() == "bc"
        # The deleted char exists in the chain (undo material survives).
        from repro.text import chars as C
        full = list(C.traverse(target.db, h2.doc, h2.begin_char,
                               include_deleted=True))
        assert len(full) == 3

    def test_original_oids_recorded(self, store, target):
        h = store.create("d", "ana", text="x")
        original = str(h.char_oid_at(0))
        h2 = import_json(target, export_json(h), "importer")
        meta = h2.char_meta(0)
        assert meta["props"]["imported_from"] == original

    def test_styles_remapped(self, db, store, target):
        styles = StyleManager(db)
        h = store.create("d", "ana", text="ab")
        bold = styles.define_style("b", {"bold": True}, "ana", doc=h.doc)
        h.apply_style(0, 1, bold, "ana")
        h2 = import_json(target, export_json(h), "importer")
        runs = h2.styled_runs()
        assert runs[0][0] == "a" and runs[0][1] is not None
        target_styles = StyleManager(target.db)
        assert target_styles.get_style(runs[0][1])["attrs"] == \
            {"bold": True}

    def test_structure_remapped(self, db, store, target):
        structure = StructureManager(db)
        h = store.create("d", "ana", text="abcdef")
        sec = structure.add_node(h.doc, "section", "ana", label="S")
        structure.add_node(h.doc, "paragraph", "ana", parent=sec)
        structure.set_range(sec, h.char_oid_at(1), h.char_oid_at(3))
        h2 = import_json(target, export_json(h), "importer")
        target_structure = StructureManager(target.db)
        outline = target_structure.outline_text(h2.doc)
        assert outline == "- section S\n  - paragraph"
        (root,) = target_structure.roots(h2.doc)
        assert target_structure.node_text(h2, root["node"]) == "bcd"

    def test_objects_and_notes_remapped(self, db, store, target):
        objects = ObjectManager(db)
        notes = NoteManager(db)
        h = store.create("d", "ana", text="hello")
        objects.insert_image(h, 2, "ana", name="f.png", width=1, height=1)
        notes.add_note(h, 3, "margin", "ben")
        h2 = import_json(target, export_json(h), "importer")
        target_objects = ObjectManager(target.db)
        positions = target_objects.objects_with_positions(h2)
        assert positions[0][0] == 2
        target_notes = NoteManager(target.db)
        assert target_notes.notes_with_positions(h2)[0][0] == 3

    def test_state_preserved(self, store, target):
        h = store.create("d", "ana", text="x")
        store.set_state(h.doc, "final", "ana")
        h2 = import_json(target, export_json(h), "importer")
        assert target.meta(h2.doc)["state"] == "final"

    def test_imported_doc_editable(self, store, target):
        h = store.create("d", "ana", text="abc")
        h2 = import_json(target, export_json(h), "importer")
        h2.insert_text(3, "!", "importer")
        assert h2.text() == "abc!"

    def test_bad_format_rejected(self, store, target):
        with pytest.raises(TextError):
            import_json(target, {"format": 99}, "importer")


class TestTemplateWiring:
    def test_create_document_with_template(self):
        server = CollaborationServer()
        server.register_user("ana")
        session = server.connect("ana")
        template = server.styles.define_template(
            "report", "ana",
            styles=[{"name": "h1", "attrs": {"bold": True, "size": 16}}],
            structure=[
                {"kind": "section", "label": "Introduction",
                 "children": [{"kind": "paragraph"}]},
                {"kind": "section", "label": "Conclusion"},
            ],
        )
        handle = session.create_document("doc", template=template)
        outline = server.structure.outline_text(handle.doc)
        assert outline.splitlines() == [
            "- section Introduction",
            "  - paragraph",
            "- section Conclusion",
        ]
        local = server.styles.find_style("h1", doc=handle.doc)
        assert local is not None and local["doc"] == handle.doc

    def test_apply_template_returns_created_objects(self):
        server = CollaborationServer()
        server.register_user("ana")
        session = server.connect("ana")
        template = server.styles.define_template(
            "t", "ana",
            styles=[{"name": "s", "attrs": {"italic": True}}],
            structure=[{"kind": "section", "label": "A"}],
        )
        handle = session.create_document("doc")
        created = server.apply_template(handle, template, "ana")
        assert "s" in created["styles"]
        assert len(created["nodes"]) == 1


class TestRoundtripProperty:
    """Export/import must preserve text and authorship for any history."""

    from hypothesis import given, settings
    from hypothesis import strategies as st

    _chars = st.text(alphabet=st.characters(min_codepoint=32,
                                            max_codepoint=126),
                     min_size=1, max_size=6)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.tuples(st.sampled_from(["insert", "delete"]),
                              st.integers(0, 100), _chars),
                    max_size=12))
    def test_arbitrary_history_roundtrips(self, ops):
        from repro.db import Database
        source_store = DocumentStore(Database("src"))
        handle = source_store.create("d", "ana", text="seed ")
        users = ["ana", "ben"]
        for i, (kind, pos_seed, payload) in enumerate(ops):
            user = users[i % 2]
            if kind == "insert":
                pos = pos_seed % (handle.length() + 1)
                handle.insert_text(pos, payload, user)
            elif handle.length():
                pos = pos_seed % handle.length()
                count = min(len(payload), handle.length() - pos)
                if count:
                    handle.delete_range(pos, count, user)
        target_store = DocumentStore(Database("dst"))
        clone = import_json(target_store, export_json(handle), "importer")
        assert clone.text() == handle.text()
        assert clone.authors() == handle.authors()
        assert clone.check_integrity() == []
