"""Tests for feature extraction, text mining and the visual map (Fig. 2)."""

import numpy as np
import pytest

from repro.db import Database
from repro.errors import MiningError
from repro.mining import (
    FeatureExtractor,
    VisualMiner,
    cosine_similarity_matrix,
    fit_tfidf,
    kmeans_clusters,
    similar_documents,
    tokenize,
    top_terms,
)
from repro.text import DocumentStore
from repro.workload import CorpusSpec, load_corpus


@pytest.fixture
def db():
    return Database("t")


@pytest.fixture
def store(db):
    return DocumentStore(db)


class TestTokenize:
    def test_basic(self):
        assert tokenize("Hello, World! hello") == ["hello", "world", "hello"]

    def test_stopwords_removed(self):
        assert tokenize("the cat and the hat") == ["cat", "hat"]

    def test_short_tokens_removed(self):
        assert tokenize("a b cd") == ["cd"]

    def test_numbers_kept(self):
        assert tokenize("report 2006") == ["report", "2006"]


class TestFeatures:
    def test_extract(self, db, store):
        h = store.create("d", "ana", text="database transactions rock")
        h.insert_text(0, "x ", "ben")
        features = FeatureExtractor(db).extract(h.doc)
        assert features.name == "d"
        assert features.n_authors == 2
        assert "database" in features.tokens
        assert features.term_counts["database"] == 1

    def test_extract_all_ordered(self, db, store):
        store.create("first", "ana")
        store.create("second", "ana")
        features = FeatureExtractor(db).extract_all()
        assert [f.name for f in features] == ["first", "second"]

    def test_extract_consistent_when_commit_lands_mid_scan(
            self, db, store, monkeypatch):
        """Regression: a commit between extract's queries must not tear.

        Feature extraction reads the document row, reconstructs the text
        from one CHARS sweep, then sweeps CHARS again for the author
        set.  A writer committing between the two sweeps used to produce
        a record no database state ever matched — the token bag from
        before the commit, the author set from after.  The test wires an
        interloper edit to fire right after the first CHARS sweep and
        checks both halves describe one commit point.
        """
        from repro.db import col
        from repro.db.query import Query
        from repro.text import chars as C
        from repro.text import dbschema as S

        handle = store.create("d", "ana", text="alpha beta")
        state = {
            "armed": False, "fired": False,
            "interloper": lambda: handle.insert_text(
                0, "mallory ", "mallory"),
        }
        real_run = Query.run

        def run_with_interloper(query):
            rows = real_run(query)
            if (state["armed"] and not state["fired"]
                    and query._table_name == S.CHARS):
                state["fired"] = True
                state["interloper"]()
            return rows

        monkeypatch.setattr(Query, "run", run_with_interloper)

        # The failure mode, reproduced with the read-committed sequence
        # the extractor used before it pinned a snapshot: the text comes
        # from before the interloper's commit, the author set from after.
        state["armed"], state["fired"] = True, False
        row = db.query(S.DOCUMENTS).where(col("doc") == handle.doc).first()
        torn_text = C.chain_text(db, handle.doc, row["begin_char"])
        torn_authors = {r["author"]
                       for r in db.query(S.CHARS)
                       .where(col("doc") == handle.doc).run() if r["ch"]}
        assert state["fired"]
        assert "mallory" in torn_authors and "mallory" not in torn_text, \
            "the read-committed sequence no longer tears; update the test"

        # The extractor itself must not tear: same interleaving against a
        # fresh document, but the snapshot pins one commit point for
        # every query — the interloper's commit lands entirely after it.
        handle2 = store.create("d2", "ana", text="gamma delta")
        state["interloper"] = lambda: handle2.insert_text(
            0, "intruder ", "intruder")
        state["armed"], state["fired"] = True, False
        features = FeatureExtractor(db).extract(handle2.doc)
        assert state["fired"], "the interloper never ran — hook broke"
        assert features.n_authors == 1, (
            f"torn features: author sweep saw the mid-extract commit the "
            f"text sweep missed ({features.n_authors} authors)")
        assert "intruder" not in features.tokens

    def test_deleted_text_not_extracted(self, db, store):
        h = store.create("d", "ana", text="visible removed")
        h.delete_range(8, 7, "ana")
        features = FeatureExtractor(db).extract(h.doc)
        assert "removed" not in features.tokens


class TestTfIdf:
    def _features(self, db, store):
        store.create("a", "ana", text="database table index database")
        store.create("b", "ana", text="editor cursor style editor")
        store.create("c", "ana", text="database editor")
        return FeatureExtractor(db).extract_all()

    def test_rows_normalised(self, db, store):
        model = fit_tfidf(self._features(db, store))
        norms = np.linalg.norm(model.matrix, axis=1)
        assert np.allclose(norms[norms > 0], 1.0)

    def test_similarity_structure(self, db, store):
        features = self._features(db, store)
        model = fit_tfidf(features)
        sims = cosine_similarity_matrix(model)
        # c shares terms with both a and b; a and b share nothing.
        a, b, c = (model.row_of(f.doc) for f in features)
        assert sims[a, b] == pytest.approx(0.0, abs=1e-9)
        assert sims[a, c] > 0
        assert sims[b, c] > 0

    def test_top_terms(self, db, store):
        features = self._features(db, store)
        model = fit_tfidf(features)
        assert top_terms(model, features[0].doc, 2)[0] == "database"

    def test_similar_documents(self, db, store):
        features = self._features(db, store)
        model = fit_tfidf(features)
        hits = similar_documents(model, features[2].doc, 2)
        assert {doc for doc, __ in hits} == {
            features[0].doc, features[1].doc,
        }

    def test_query_projection(self, db, store):
        model = fit_tfidf(self._features(db, store))
        vec = model.vector_for_tokens(["database"])
        assert vec.any()
        assert model.vector_for_tokens(["zzz"]).sum() == 0

    def test_empty_corpus(self):
        model = fit_tfidf([])
        assert model.n_docs == 0


class TestKMeans:
    def test_deterministic(self, db, store):
        spec = CorpusSpec(n_docs=12, seed=3)
        load_corpus(store, spec)
        features = FeatureExtractor(db).extract_all()
        model = fit_tfidf(features)
        labels1 = kmeans_clusters(model, 4, seed=5)
        labels2 = kmeans_clusters(model, 4, seed=5)
        assert labels1 == labels2
        assert len(labels1) == 12

    def test_k_clamped(self, db, store):
        store.create("only", "ana", text="words here")
        features = FeatureExtractor(db).extract_all()
        model = fit_tfidf(features)
        assert kmeans_clusters(model, 10) == [0]

    def test_topical_clusters_separate(self, db, store):
        """Documents of two clearly distinct topics get separated."""
        for i in range(4):
            store.create(f"db{i}", "ana",
                         text="database table index transaction " * 5)
        for i in range(4):
            store.create(f"ed{i}", "ana",
                         text="editor cursor clipboard style " * 5)
        features = FeatureExtractor(db).extract_all()
        model = fit_tfidf(features)
        labels = kmeans_clusters(model, 2, seed=1)
        db_labels = set(labels[:4])
        ed_labels = set(labels[4:])
        assert len(db_labels) == 1 and len(ed_labels) == 1
        assert db_labels != ed_labels


class TestDocumentMap:
    @pytest.fixture
    def corpus_db(self, db, store):
        load_corpus(store, CorpusSpec(n_docs=10, seed=3))
        return db

    def test_map_covers_all_documents(self, corpus_db):
        doc_map = VisualMiner(corpus_db).build_map()
        assert doc_map.stats()["documents"] == 10

    def test_layout_deterministic(self, corpus_db):
        map1 = VisualMiner(corpus_db, seed=2).build_map()
        map2 = VisualMiner(corpus_db, seed=2).build_map()
        assert [(p.x, p.y) for p in map1.points] == \
            [(p.x, p.y) for p in map2.points]

    def test_group_by_dimensions(self, corpus_db):
        doc_map = VisualMiner(corpus_db).build_map()
        by_creator = doc_map.group_by("creator")
        assert sum(len(v) for v in by_creator.values()) == 10
        by_state = doc_map.group_by("state")
        assert set(by_state) <= {"draft", "review", "final"}
        doc_map.group_by("cluster")
        doc_map.group_by("size_band")

    def test_unknown_dimension(self, corpus_db):
        doc_map = VisualMiner(corpus_db).build_map()
        with pytest.raises(MiningError):
            doc_map.group_by("moon_phase")

    def test_ascii_scatter(self, corpus_db):
        doc_map = VisualMiner(corpus_db).build_map()
        art = doc_map.ascii_scatter(width=40, height=10)
        lines = art.splitlines()
        assert len(lines) == 12  # borders + rows
        assert sum(ch.isdigit() for line in lines for ch in line) >= 1

    def test_empty_space(self, db):
        doc_map = VisualMiner(db).build_map()
        assert doc_map.points == []
        assert doc_map.ascii_scatter() == "(empty document space)"

    def test_point_of_unknown(self, corpus_db):
        doc_map = VisualMiner(corpus_db).build_map()
        with pytest.raises(MiningError):
            doc_map.point_of("nope")

    def test_edges_respect_threshold(self, corpus_db):
        strict = VisualMiner(corpus_db).build_map(similarity_threshold=0.99)
        loose = VisualMiner(corpus_db).build_map(similarity_threshold=0.01)
        assert len(strict.edges) <= len(loose.edges)
