"""Tests for the search engine: content, metadata, structure, ranking."""

import pytest

from repro.clock import SimulatedClock
from repro.collab import CollaborationServer
from repro.db import Database
from repro.errors import QuerySyntaxError, SearchError
from repro.search import InvertedIndex, SearchEngine, parse_query
from repro.text import DocumentStore, StructureManager


@pytest.fixture
def db():
    return Database("t", clock=SimulatedClock())


@pytest.fixture
def store(db):
    return DocumentStore(db)


class TestQueryParsing:
    def test_terms_only(self):
        query = parse_query("Quick Brown foxes")
        assert query.terms == ["quick", "brown", "foxes"]
        assert query.filters == []

    def test_filters(self):
        query = parse_query("budget creator:ana state:final")
        assert query.terms == ["budget"]
        assert query.filters == [("creator", "ana"), ("state", "final")]

    def test_prop_filter(self):
        query = parse_query("prop:project=tendax")
        assert query.filters == [("prop", "project=tendax")]

    def test_unknown_field_is_content(self):
        query = parse_query("http:something")
        assert query.filters == []
        assert "something" in query.terms

    def test_empty_filter_value_rejected(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("creator:")

    def test_empty_query(self):
        assert parse_query("").is_empty


class TestInvertedIndex:
    def test_postings(self, db, store):
        store.create("a", "ana", text="database systems for databases")
        index = InvertedIndex(db)
        assert len(index.postings("database")) == 1
        assert index.vocabulary_size() > 0

    def test_incremental_refresh(self, db, store):
        h = store.create("a", "ana", text="alpha")
        index = InvertedIndex(db)
        h.insert_text(5, " omega", "ana")
        assert index.postings("omega") == {}  # not yet refreshed
        assert index.ensure_fresh() == 1
        assert len(index.postings("omega")) == 1

    def test_new_document_picked_up(self, db, store):
        index = InvertedIndex(db)
        store.create("late", "ana", text="latecomer words")
        index.ensure_fresh()
        assert len(index.postings("latecomer")) == 1

    def test_deleted_text_leaves_index(self, db, store):
        h = store.create("a", "ana", text="ephemeral words")
        index = InvertedIndex(db)
        h.delete_range(0, 9, "ana")
        index.ensure_fresh()
        assert index.postings("ephemeral") == {}

    def test_matching_all_vs_any(self, db, store):
        store.create("a", "ana", text="alpha beta")
        store.create("b", "ana", text="beta gamma")
        index = InvertedIndex(db)
        assert len(index.matching_docs(["beta"])) == 2
        assert len(index.matching_docs(["alpha", "beta"])) == 1
        assert len(index.matching_docs(["alpha", "gamma"],
                                       require_all=False)) == 2

    def test_refresh_only_touches_dirty(self, db, store):
        store.create("a", "ana", text="one")
        h2 = store.create("b", "ana", text="two")
        index = InvertedIndex(db)
        before = index.stats["reindexed_docs"]
        h2.insert_text(3, " more", "ana")
        index.ensure_fresh()
        assert index.stats["reindexed_docs"] == before + 1


class TestContentSearch:
    @pytest.fixture
    def engine(self, db, store):
        store.create("fox-doc", "ana",
                     text="the quick brown fox likes databases")
        store.create("dog-doc", "ben", text="lazy dogs sleep all day")
        store.create("both", "ana", text="fox and dog together")
        return SearchEngine(db)

    def test_single_term(self, engine):
        names = {r.name for r in engine.search("fox")}
        assert names == {"fox-doc", "both"}

    def test_conjunctive_terms(self, engine):
        names = {r.name for r in engine.search("fox dog")}
        assert names == {"both"}

    def test_no_hits(self, engine):
        assert engine.search("unicorn") == []

    def test_snippet_contains_term(self, engine):
        (hit,) = [r for r in engine.search("databases")]
        assert "databases" in hit.snippet

    def test_live_index(self, db, store):
        engine = SearchEngine(db)
        h = store.create("d", "ana", text="start")
        h.insert_text(5, " xylophone", "ana")
        assert [r.name for r in engine.search("xylophone")] == ["d"]

    def test_limit(self, engine):
        assert len(engine.search("fox", limit=1)) == 1

    def test_render_results(self, engine):
        text = engine.render_results(engine.search("fox"))
        assert "1." in text
        assert engine.render_results([]) == "(no results)"


class TestMetadataSearch:
    @pytest.fixture
    def engine(self, db, store):
        h1 = store.create("alpha report", "ana", text="shared words here")
        store.set_state(h1.doc, "final", "ana")
        store.set_property(h1.doc, "project", "tendax", "ana")
        store.create("beta notes", "ben", text="shared words here")
        store.open(h1.doc, "cleo")
        return SearchEngine(db)

    def test_creator_filter(self, engine):
        names = [r.name for r in engine.search("shared creator:ana")]
        assert names == ["alpha report"]

    def test_state_filter(self, engine):
        names = [r.name for r in engine.search("state:final")]
        assert names == ["alpha report"]

    def test_name_filter(self, engine):
        names = [r.name for r in engine.search("name:beta")]
        assert names == ["beta notes"]

    def test_reader_filter(self, engine):
        names = [r.name for r in engine.search("reader:cleo")]
        assert names == ["alpha report"]

    def test_author_filter(self, engine):
        names = [r.name for r in engine.search("author:ben")]
        assert names == ["beta notes"]

    def test_prop_filter(self, engine):
        assert [r.name for r in engine.search("prop:project=tendax")] == \
            ["alpha report"]
        assert [r.name for r in engine.search("prop:project")] == \
            ["alpha report"]
        assert engine.search("prop:project=other") == []

    def test_filters_combine_with_terms(self, engine):
        assert engine.search("shared creator:ben")[0].name == "beta notes"
        assert engine.search("unfindable creator:ben") == []


class TestStructureSearch:
    def test_label_match(self, db, store):
        structure = StructureManager(db)
        h = store.create("paper", "ana", text="...")
        structure.add_node(h.doc, "section", "ana", label="Introduction")
        structure.add_node(h.doc, "section", "ana", label="Evaluation")
        engine = SearchEngine(db)
        hits = engine.search_structure("intro")
        assert len(hits) == 1
        assert hits[0]["label"] == "Introduction"
        assert hits[0]["doc_name"] == "paper"

    def test_kind_filter(self, db, store):
        structure = StructureManager(db)
        h = store.create("paper", "ana", text="...")
        structure.add_node(h.doc, "section", "ana", label="Results")
        structure.add_node(h.doc, "heading", "ana", label="Results table")
        engine = SearchEngine(db)
        assert len(engine.search_structure("results")) == 2
        assert len(engine.search_structure("results", kind="heading")) == 1


class TestRanking:
    @pytest.fixture
    def server(self):
        server = CollaborationServer(clock=SimulatedClock())
        server.register_user("ana")
        server.register_user("ben")
        return server

    def test_newest_and_oldest(self, server):
        session = server.connect("ana")
        session.create_document("old", text="common words")
        session.create_document("new", text="common words")
        engine = SearchEngine(server.db)
        newest = [r.name for r in engine.search("common", ranking="newest")]
        assert newest == ["new", "old"]
        oldest = [r.name for r in engine.search("common", ranking="oldest")]
        assert oldest == ["old", "new"]

    def test_most_cited(self, server):
        session = server.connect("ana")
        cited = session.create_document("cited", text="common words source")
        other = session.create_document("other", text="common words too")
        target = session.create_document("target", text="")
        session.copy(cited.doc, 0, 6)
        session.paste(target.doc, 0)
        engine = SearchEngine(server.db)
        results = [r.name for r in engine.search("common",
                                                 ranking="most_cited")]
        assert results[0] == "cited"

    def test_most_read(self, server):
        session = server.connect("ana")
        popular = session.create_document("popular", text="common stuff")
        session.create_document("ignored", text="common stuff")
        server.documents.open(popular.doc, "ben")
        engine = SearchEngine(server.db)
        results = [r.name for r in engine.search("common",
                                                 ranking="most_read")]
        assert results[0] == "popular"

    def test_largest(self, server):
        session = server.connect("ana")
        session.create_document("big", text="common " * 50)
        session.create_document("small", text="common")
        engine = SearchEngine(server.db)
        results = [r.name for r in engine.search("common",
                                                 ranking="largest")]
        assert results[0] == "big"

    def test_relevance_prefers_term_density(self, server):
        session = server.connect("ana")
        session.create_document("dense", text="fox fox fox")
        session.create_document(
            "diluted", text="fox " + "filler " * 60)
        engine = SearchEngine(server.db)
        results = [r.name for r in engine.search("fox")]
        assert results[0] == "dense"

    def test_unknown_ranking(self, server):
        session = server.connect("ana")
        session.create_document("d", text="x words")
        engine = SearchEngine(server.db)
        with pytest.raises(SearchError):
            engine.search("words", ranking="by_vibes")


class TestPhraseSearch:
    @pytest.fixture
    def engine(self, db, store):
        store.create("exact", "ana", text="the quick brown fox runs")
        store.create("scattered", "ana", text="quick dogs and brown cats")
        store.create("reversed", "ana", text="brown quick animals")
        return SearchEngine(db)

    def test_phrase_requires_adjacency(self, engine):
        names = [r.name for r in engine.search('"quick brown"')]
        assert names == ["exact"]

    def test_phrase_requires_order(self, engine):
        names = {r.name for r in engine.search('"brown quick"')}
        assert names == {"reversed"}

    def test_single_word_phrase(self, engine):
        names = {r.name for r in engine.search('"quick"')}
        assert names == {"exact", "scattered", "reversed"}

    def test_phrase_combines_with_terms_and_filters(self, engine):
        assert [r.name for r in
                engine.search('"quick brown" fox creator:ana')] == ["exact"]
        assert engine.search('"quick brown" creator:ben') == []

    def test_phrase_parse(self):
        query = parse_query('alpha "two words" beta')
        assert query.terms == ["alpha", "beta"]
        assert query.phrases == [["two", "words"]]
        assert set(query.all_terms) == {"alpha", "beta", "two", "words"}

    def test_empty_phrase_ignored(self):
        query = parse_query('"" alpha')
        assert query.phrases == []
        assert query.terms == ["alpha"]

    def test_phrase_across_stopwords(self, db, store):
        # Stopwords are dropped by the tokenizer, so "fox and hound"
        # matches as the phrase "fox hound".
        store.create("d", "ana", text="a fox and hound story")
        engine = SearchEngine(db)
        assert len(engine.search('"fox hound"')) == 1


class TestFeedDrivenIndex:
    """Regressions for the changefeed refactor: deletes, archived
    documents, and snapshot pinning."""

    def test_delete_document_purges_postings(self, db, store):
        keep = store.create("keep", "ana", text="alpha shared words")
        gone = store.create("gone", "ana", text="ephemeral shared words")
        index = InvertedIndex(db)
        assert index.doc_count() == 2
        store.delete_document(gone.doc, "ana")
        index.ensure_fresh()
        assert index.postings("ephemeral") == {}
        assert set(index.postings("shared")) == {keep.doc}
        assert index.doc_count() == 1
        assert gone.doc not in index.all_docs()

    def test_delete_document_drops_search_results(self, db, store):
        engine = SearchEngine(db)
        gone = store.create("gone", "ana", text="vanishing act")
        assert [r.doc for r in engine.search("vanishing")] == [gone.doc]
        store.delete_document(gone.doc, "ana")
        assert engine.search("vanishing") == []

    def test_archived_documents_are_searchable(self, db, store):
        doc = store.import_archived(
            "arch", "ana", text="archival lore preserved")
        engine = SearchEngine(db)
        results = engine.search("archival")
        assert [r.doc for r in results] == [doc]
        assert "archival" in results[0].snippet

    def test_ensure_fresh_pinned_to_snapshot(self, db, store):
        store.create("early", "ana", text="early words")
        index = InvertedIndex(db)
        index.ensure_fresh()
        with db.snapshot() as snap:
            # Commits after the snapshot opened must not be absorbed by
            # a refresh pinned to it.
            store.create("late", "ana", text="latecomer words")
            assert index.ensure_fresh(txn=snap) == 0
            assert index.postings("latecomer") == {}
        assert index.ensure_fresh() == 1
        assert len(index.postings("latecomer")) == 1

    def test_search_pinned_against_concurrent_writer(
            self, db, store, monkeypatch):
        """A writer committing between the search snapshot opening and
        the index refresh must not leak into the result set (the old
        code refreshed outside the snapshot and returned a torn view)."""
        store.create("steady", "ana", text="alpha words")
        engine = SearchEngine(db)
        engine.search("alpha")  # warm the index
        original = engine.index.ensure_fresh
        fired = []

        def racy_refresh(txn=None):
            if not fired:
                fired.append(True)
                store.create("intruder", "ben", text="alpha words")
            return original(txn=txn)

        monkeypatch.setattr(engine.index, "ensure_fresh", racy_refresh)
        names = [r.name for r in engine.search("alpha")]
        assert names == ["steady"]
        # The next search opens a later snapshot and sees the intruder.
        names = {r.name for r in engine.search("alpha")}
        assert names == {"steady", "intruder"}

    def test_fast_path_matches_slow_path_ranking(self, db, store):
        for i in range(6):
            text = "needle " * (i + 1) + "hay " * (8 - i)
            store.create(f"d{i}", "ana", text=text)
        engine = SearchEngine(db)
        # A filter forces the full candidate-scan path; without one the
        # single-term query takes the impact-ordered fast path.  Both
        # must produce the identical ranking with identical scores.
        fast = engine.search("needle", limit=4)
        slow = engine.search("needle creator:ana", limit=4)
        assert [r.doc for r in fast] == [r.doc for r in slow]
        for f, s in zip(fast, slow):
            assert f.score == pytest.approx(s.score)
