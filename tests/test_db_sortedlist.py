"""Tests for the blocked sorted list backing ordered indexes."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db.sortedlist import BlockedSortedList


class TestBasics:
    def test_empty(self):
        lst = BlockedSortedList()
        assert len(lst) == 0
        assert list(lst) == []
        assert lst.min() is None and lst.max() is None
        assert 1 not in lst

    def test_construct_from_iterable(self):
        lst = BlockedSortedList([3, 1, 2, 2])
        assert list(lst) == [1, 2, 2, 3]
        assert len(lst) == 4

    def test_add_keeps_order(self):
        lst = BlockedSortedList()
        for value in [5, 1, 4, 1, 9]:
            lst.add(value)
        assert list(lst) == [1, 1, 4, 5, 9]
        assert lst.min() == 1 and lst.max() == 9

    def test_remove(self):
        lst = BlockedSortedList([1, 2, 2, 3])
        assert lst.remove(2) is True
        assert list(lst) == [1, 2, 3]
        assert lst.remove(99) is False
        assert lst.remove(3) and lst.remove(2) and lst.remove(1)
        assert len(lst) == 0

    def test_contains(self):
        lst = BlockedSortedList([1, 5, 9])
        assert 5 in lst
        assert 4 not in lst
        assert 10 not in lst

    def test_reversed(self):
        lst = BlockedSortedList([2, 1, 3])
        assert list(reversed(lst)) == [3, 2, 1]

    def test_blocks_split_and_merge(self):
        lst = BlockedSortedList()
        n = BlockedSortedList.BLOCK * 5
        for i in range(n):
            lst.add(i)
        assert len(lst._blocks) > 1          # splits happened
        for i in range(n):
            assert lst.remove(i)
        assert len(lst) == 0
        assert lst._blocks == []


class TestIrange:
    @pytest.fixture
    def lst(self):
        return BlockedSortedList([1, 3, 3, 5, 7, 9])

    def test_closed_range(self, lst):
        assert list(lst.irange(3, 7)) == [3, 3, 5, 7]

    def test_open_low(self, lst):
        assert list(lst.irange(3, 7, low_inclusive=False)) == [5, 7]

    def test_open_high(self, lst):
        assert list(lst.irange(3, 7, high_inclusive=False)) == [3, 3, 5]

    def test_unbounded(self, lst):
        assert list(lst.irange()) == [1, 3, 3, 5, 7, 9]
        assert list(lst.irange(low=8)) == [9]
        assert list(lst.irange(high=2)) == [1]

    def test_range_outside(self, lst):
        assert list(lst.irange(100, 200)) == []
        assert list(lst.irange(-5, 0)) == []

    def test_exclusive_low_with_duplicates_across_blocks(self):
        # Force duplicates of the bound to straddle a block boundary.
        lst = BlockedSortedList()
        for __ in range(BlockedSortedList.BLOCK * 3):
            lst.add(7)
        lst.add(8)
        assert list(lst.irange(7, low_inclusive=False)) == [8]


class TestAgainstModel:
    @settings(max_examples=150, deadline=None)
    @given(st.lists(st.tuples(st.booleans(),
                              st.integers(-30, 30)), max_size=200))
    def test_matches_plain_sorted_list(self, ops):
        lst = BlockedSortedList()
        model: list[int] = []
        for is_add, value in ops:
            if is_add:
                lst.add(value)
                model.append(value)
                model.sort()
            else:
                removed = lst.remove(value)
                assert removed == (value in model)
                if removed:
                    model.remove(value)
            assert list(lst) == model
            assert len(lst) == len(model)

    @settings(max_examples=100, deadline=None)
    @given(st.lists(st.integers(-50, 50), max_size=120),
           st.integers(-50, 50), st.integers(-50, 50),
           st.booleans(), st.booleans())
    def test_irange_matches_filter(self, values, a, b, low_inc, high_inc):
        low, high = min(a, b), max(a, b)
        lst = BlockedSortedList(values)
        got = list(lst.irange(low, high, low_inclusive=low_inc,
                              high_inclusive=high_inc))
        expected = sorted(
            v for v in values
            if (v >= low if low_inc else v > low)
            and (v <= high if high_inc else v < high)
        )
        assert got == expected

    def test_large_randomised_soak(self):
        rng = random.Random(7)
        lst = BlockedSortedList()
        model: list[int] = []
        for __ in range(5000):
            value = rng.randint(0, 1000)
            if model and rng.random() < 0.4:
                victim = rng.choice(model)
                assert lst.remove(victim)
                model.remove(victim)
            else:
                lst.add(value)
                model.append(value)
        assert list(lst) == sorted(model)
