"""Tests for DocumentStore / DocumentHandle: edits, caches, propagation."""

import pytest

from repro.db import Database, col
from repro.errors import InvalidPositionError, UnknownDocumentError
from repro.text import DocumentStore
from repro.text import dbschema as S


@pytest.fixture
def db():
    return Database("t")


@pytest.fixture
def store(db):
    return DocumentStore(db)


class TestLifecycle:
    def test_create_with_text(self, store):
        h = store.create("d", "ana", text="hello")
        assert h.text() == "hello"
        assert h.length() == 5

    def test_create_records_metadata(self, db, store):
        h = store.create("d", "ana", props={"project": "tendax"})
        meta = store.meta(h.doc)
        assert meta["creator"] == "ana"
        assert meta["state"] == "draft"
        assert meta["props"] == {"project": "tendax"}

    def test_open_unknown_raises(self, db, store):
        with pytest.raises(UnknownDocumentError):
            store.open(db.new_oid("doc"), "ana")

    def test_open_logs_read(self, db, store):
        h = store.create("d", "ana")
        store.open(h.doc, "ben")
        reads = (db.query(S.ACCESS_LOG)
                 .where((col("action") == "read") & (col("user") == "ben"))
                 .run())
        assert len(reads) == 1

    def test_find_by_name_and_list(self, store):
        store.create("alpha", "ana")
        store.create("alpha", "ben")
        store.create("beta", "ana")
        assert len(store.find_by_name("alpha")) == 2
        assert len(store.list_documents()) == 3

    def test_set_state(self, store):
        h = store.create("d", "ana")
        store.set_state(h.doc, "review", "ben")
        meta = store.meta(h.doc)
        assert meta["state"] == "review"
        assert meta["last_modified_by"] == "ben"

    def test_set_property_merges(self, store):
        h = store.create("d", "ana", props={"a": 1})
        store.set_property(h.doc, "b", 2, "ana")
        assert store.meta(h.doc)["props"] == {"a": 1, "b": 2}

    def test_set_property_unknown_doc_raises(self, db, store):
        with pytest.raises(UnknownDocumentError):
            store.set_property(db.new_oid("doc"), "k", 1, "ana")


class TestReadModifyWriteRaces:
    """Regression: set_property/set_state read the row *outside* the
    transaction, so two concurrent read-modify-writes merged into the
    same stale snapshot and one update was silently lost."""

    def test_concurrent_set_property_keeps_every_key(self, store):
        import threading

        h = store.create("d", "ana")
        keys = [f"k{i}" for i in range(8)]
        barrier = threading.Barrier(len(keys))
        errors = []

        def worker(key):
            try:
                barrier.wait()
                store.set_property(h.doc, key, key.upper(), "ana")
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(k,)) for k in keys]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        props = store.meta(h.doc)["props"]
        assert props == {k: k.upper() for k in keys}

    def test_concurrent_state_and_property(self, store):
        import threading

        h = store.create("d", "ana")
        barrier = threading.Barrier(2)

        def set_prop():
            barrier.wait()
            store.set_property(h.doc, "a", 1, "ana")

        def set_state():
            barrier.wait()
            store.set_state(h.doc, "review", "ben")

        threads = [threading.Thread(target=set_prop),
                   threading.Thread(target=set_state)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        meta = store.meta(h.doc)
        assert meta["props"] == {"a": 1}
        assert meta["state"] == "review"


class TestEditing:
    def test_insert_at_positions(self, store):
        h = store.create("d", "ana", text="ad")
        h.insert_text(1, "bc", "ana")
        assert h.text() == "abcd"
        h.insert_text(0, ">", "ana")
        assert h.text() == ">abcd"
        h.insert_text(5, "<", "ana")
        assert h.text() == ">abcd<"

    def test_insert_out_of_range(self, store):
        h = store.create("d", "ana", text="ab")
        with pytest.raises(InvalidPositionError):
            h.insert_text(3, "x", "ana")
        with pytest.raises(InvalidPositionError):
            h.insert_text(-1, "x", "ana")

    def test_delete_range(self, store):
        h = store.create("d", "ana", text="abcdef")
        h.delete_range(1, 3, "ana")
        assert h.text() == "aef"

    def test_delete_out_of_range(self, store):
        h = store.create("d", "ana", text="ab")
        with pytest.raises(InvalidPositionError):
            h.delete_range(1, 5, "ana")
        with pytest.raises(InvalidPositionError):
            h.delete_range(0, -1, "ana")

    def test_delete_then_undelete(self, store):
        h = store.create("d", "ana", text="abcdef")
        oids = h.delete_range(1, 3, "ana")
        h.undelete_chars(oids, "ana")
        assert h.text() == "abcdef"

    def test_size_maintained(self, store):
        h = store.create("d", "ana", text="hello")
        h.insert_text(5, " world", "ana")
        h.delete_range(0, 2, "ana")
        assert store.meta(h.doc)["size"] == 9
        assert h.length() == 9

    def test_empty_insert_noop(self, store):
        h = store.create("d", "ana", text="x")
        assert h.insert_text(0, "", "ana") == []
        assert h.text() == "x"

    def test_last_modified_tracked(self, db, store):
        h = store.create("d", "ana")
        before = store.meta(h.doc)["last_modified"]
        h.insert_text(0, "x", "ben")
        meta = store.meta(h.doc)
        assert meta["last_modified"] > before
        assert meta["last_modified_by"] == "ben"

    def test_write_access_logged(self, db, store):
        h = store.create("d", "ana")
        h.insert_text(0, "x", "ben")
        writes = (db.query(S.ACCESS_LOG)
                  .where((col("action") == "write") & (col("user") == "ben"))
                  .run())
        assert len(writes) == 1

    def test_write_logging_can_be_disabled(self, db):
        store = DocumentStore(db, log_writes=False)
        h = store.create("d", "ana")
        h.insert_text(0, "x", "ana")
        writes = db.query(S.ACCESS_LOG).where(col("action") == "write").run()
        assert writes == []


class TestPositionApi:
    def test_char_oid_roundtrip(self, store):
        h = store.create("d", "ana", text="abc")
        oid = h.char_oid_at(1)
        assert h.position_of(oid) == 1

    def test_position_of_deleted_is_none(self, store):
        h = store.create("d", "ana", text="abc")
        (oid,) = h.delete_range(1, 1, "ana")
        assert h.position_of(oid) is None

    def test_char_oid_at_out_of_range(self, store):
        h = store.create("d", "ana", text="a")
        with pytest.raises(InvalidPositionError):
            h.char_oid_at(1)

    def test_anchor_for_zero_is_begin(self, store):
        h = store.create("d", "ana", text="a")
        assert h.anchor_for(0) == h.begin_char
        assert h.anchor_for(1) == h.char_oid_at(0)

    def test_char_meta(self, store):
        h = store.create("d", "ana", text="a")
        meta = h.char_meta(0)
        assert meta["ch"] == "a"
        assert meta["author"] == "ana"


class TestMultiHandlePropagation:
    def test_remote_edit_appears(self, store):
        h1 = store.create("d", "ana", text="shared")
        h2 = store.open(h1.doc, "ben")
        h2.insert_text(6, "!", "ben")
        assert h1.text() == "shared!"
        assert h2.text() == "shared!"

    def test_remote_delete_appears(self, store):
        h1 = store.create("d", "ana", text="shared")
        h2 = store.open(h1.doc, "ben")
        h1.delete_range(0, 3, "ana")
        assert h2.text() == "red"

    def test_interleaved_edits_converge(self, store):
        h1 = store.create("d", "ana", text="__")
        h2 = store.open(h1.doc, "ben")
        h1.insert_text(1, "a", "ana")
        h2.insert_text(1, "b", "ben")
        h1.insert_text(0, "c", "ana")
        assert h1.text() == h2.text()
        assert h1.check_integrity() == []

    def test_closed_handle_stops_updating(self, store):
        h1 = store.create("d", "ana", text="x")
        h2 = store.open(h1.doc, "ben")
        h2.close()
        h1.insert_text(1, "y", "ana")
        assert h2.length() == 1  # stale by design after close
        h2.refresh()
        assert h2.length() == 2

    def test_refresh_matches_incremental(self, store):
        h1 = store.create("d", "ana", text="abcdef")
        h2 = store.open(h1.doc, "ben")
        h1.delete_range(2, 2, "ana")
        h1.insert_text(2, "XY", "ana")
        incremental = h2.char_oids()
        h2.refresh()
        assert h2.char_oids() == incremental


class TestRendering:
    def test_styled_runs_grouping(self, db, store):
        h = store.create("d", "ana", text="aabbb")
        style = db.new_oid("style")
        h.apply_style(2, 3, style, "ana")
        runs = h.styled_runs()
        assert runs == [("aa", None), ("bbb", style)]

    def test_authors_counts_visible_only(self, store):
        h = store.create("d", "ana", text="aaa")
        h.insert_text(3, "bb", "ben")
        h.delete_range(0, 1, "cleo")  # deletes one of ana's chars
        assert h.authors() == {"ana": 2, "ben": 2}


class TestArchivedAndPurge:
    """Regressions for the changefeed refactor: archived documents and
    physical document deletion."""

    def test_import_archived_roundtrip(self, db, store):
        doc = store.import_archived("arch", "ana", text="whole blob",
                                    props={"topic": "db"})
        meta = store.meta(doc)
        assert meta["begin_char"] is None
        assert meta["size"] == len("whole blob")
        assert meta["props"]["archived_text"] == "whole blob"
        assert meta["props"]["topic"] == "db"

    def test_archived_handle_renders_empty(self, db, store):
        doc = store.import_archived("arch", "ana", text="whole blob")
        h = store.handle(doc)
        assert h.text() == ""
        assert h.length() == 0
        h.close()

    def test_delete_document_purges_all_rows(self, db, store):
        h = store.create("d", "ana", text="abc")
        removed = store.delete_document(h.doc, "ana")
        # 3 chars + the create access-log row + the DOCUMENTS row.
        assert removed >= 5
        with pytest.raises(UnknownDocumentError):
            store.meta(h.doc)
        for table in (S.CHARS, S.ACCESS_LOG, S.VERSIONS):
            rows = db.query(table).where(col("doc") == h.doc).run()
            assert rows == []

    def test_delete_unknown_document_raises(self, db, store):
        with pytest.raises(UnknownDocumentError):
            store.delete_document(db.new_oid("doc"), "ana")

    def test_handle_close_unsubscribes_doc_cache(self, db, store):
        h = store.create("d", "ana", text="abc")
        feed = db.changefeed()
        assert any(s.name.startswith("doc-cache:")
                   for s in feed.subscriptions())
        h.close()
        assert not any(s.name.startswith("doc-cache:")
                       for s in feed.subscriptions())

    def test_open_handles_survive_concurrent_purge(self, db, store):
        # Another session deletes the document while a handle is open;
        # the handle's cache drains through the delete before-images
        # instead of serving stale characters.
        h = store.create("d", "ana", text="abc")
        store.delete_document(h.doc, "ana")
        assert h.text() == ""
        assert h.length() == 0
        h.close()
