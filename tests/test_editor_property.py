"""Property-based tests driving the editor client API.

The editor exposes cursor/selection/typing/clipboard/undo verbs; these
suites check the client-level invariants that must hold under any input
sequence, for two editors racing on the same document:

* cursors always resolve inside ``[0, length]``;
* selections only ever contain currently-visible characters;
* both editors render the same text after every step;
* the character chain stays intact.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.collab import CollaborationServer, EditorClient
from repro.errors import ClipboardError, UndoError

text_chunks = st.text(
    alphabet=st.characters(min_codepoint=97, max_codepoint=122),
    min_size=1, max_size=5,
)

actions = st.lists(
    st.tuples(
        st.integers(0, 1),                   # which editor
        st.sampled_from([
            "type", "backspace", "delete_forward", "move", "select",
            "copy", "paste", "cut", "undo", "redo",
        ]),
        st.integers(0, 400),                 # position / count seed
        text_chunks,
    ),
    min_size=1, max_size=30,
)


def _drive(editor: EditorClient, action: str, seed: int,
           payload: str) -> None:
    length = editor.handle.length()
    if action == "type":
        editor.type(payload)
    elif action == "backspace":
        editor.backspace(seed % 4 + 1)
    elif action == "delete_forward":
        editor.delete_forward(seed % 4 + 1)
    elif action == "move":
        editor.move_to(seed % (length + 1))
    elif action == "select":
        if length:
            pos = seed % length
            count = min(len(payload), length - pos)
            if count:
                editor.select(pos, count)
    elif action == "copy":
        try:
            editor.copy()
        except ClipboardError:
            pass
    elif action == "paste":
        try:
            editor.paste()
        except ClipboardError:
            pass
    elif action == "cut":
        try:
            editor.cut()
        except ClipboardError:
            pass
    elif action == "undo":
        try:
            editor.undo()
        except UndoError:
            pass
    elif action == "redo":
        try:
            editor.redo()
        except UndoError:
            pass


@settings(max_examples=40, deadline=None)
@given(actions)
def test_editor_invariants_under_any_input(action_list):
    server = CollaborationServer()
    server.register_user("u0")
    server.register_user("u1")
    s0 = server.connect("u0")
    s1 = server.connect("u1")
    handle = s0.create_document("d", text="start ")
    editors = [EditorClient(s0, handle.doc), EditorClient(s1, handle.doc)]

    for who, action, seed, payload in action_list:
        editor = editors[who]
        _drive(editor, action, seed, payload)

        # -- invariants after every single step -----------------------
        length = handle.length()
        for e in editors:
            cursor = e.cursor()
            assert 0 <= cursor <= length
            for oid in e.selection():
                assert e.handle.position_of(oid) is not None
        assert editors[0].text() == editors[1].text()
    assert handle.check_integrity() == []


@settings(max_examples=30, deadline=None)
@given(actions)
def test_editor_state_survives_reopen(action_list):
    """Closing and reopening mid-session yields the same document."""
    server = CollaborationServer()
    server.register_user("u0")
    server.register_user("u1")
    s0 = server.connect("u0")
    s1 = server.connect("u1")
    handle = s0.create_document("d", text="start ")
    editor = EditorClient(s0, handle.doc)
    for i, (who, action, seed, payload) in enumerate(action_list):
        _drive(editor, action, seed, payload)
        if i == len(action_list) // 2:
            # A second user opens the document cold, mid-history.
            other = EditorClient(s1, handle.doc)
            assert other.text() == editor.text()
            other.close()
    final = EditorClient(s1, handle.doc)
    assert final.text() == editor.text()
