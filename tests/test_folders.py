"""Tests for static folders and dynamic folders."""

import pytest

from repro.clock import SimulatedClock
from repro.db import Database
from repro.errors import FolderError
from repro.folders import (
    AccessedBy,
    AuthoredBy,
    CreatorIs,
    DynamicFolderManager,
    HasProperty,
    ModifiedWithin,
    NameContains,
    SizeAtLeast,
    StateIs,
    StaticFolderManager,
)
from repro.text import DocumentStore

DAY = 86400.0


@pytest.fixture
def clock():
    return SimulatedClock()


@pytest.fixture
def db(clock):
    return Database("t", clock=clock)


@pytest.fixture
def store(db):
    return DocumentStore(db)


class TestStaticFolders:
    def test_tree_and_paths(self, db, store):
        sfm = StaticFolderManager(db)
        root = sfm.create_folder("projects", "ana")
        sub = sfm.create_folder("tendax", "ana", parent=root)
        assert sfm.path_of(sub) == "/projects/tendax"
        assert [c["name"] for c in sfm.children(root)] == ["tendax"]

    def test_place_and_remove(self, db, store):
        sfm = StaticFolderManager(db)
        folder = sfm.create_folder("inbox", "ana")
        h = store.create("d", "ana")
        sfm.place(h.doc, folder)
        sfm.place(h.doc, folder)  # idempotent
        assert sfm.contents(folder) == [h.doc]
        sfm.remove(h.doc, folder)
        assert sfm.contents(folder) == []

    def test_document_in_multiple_folders(self, db, store):
        sfm = StaticFolderManager(db)
        f1 = sfm.create_folder("a", "ana")
        f2 = sfm.create_folder("b", "ana")
        h = store.create("d", "ana")
        sfm.place(h.doc, f1)
        sfm.place(h.doc, f2)
        assert sfm.folders_of(h.doc) == sorted([f1, f2])

    def test_unknown_folder(self, db, store):
        sfm = StaticFolderManager(db)
        with pytest.raises(FolderError):
            sfm.contents(db.new_oid("folder"))

    def test_tree_text(self, db, store):
        sfm = StaticFolderManager(db)
        root = sfm.create_folder("top", "ana")
        sfm.create_folder("sub", "ana", parent=root)
        text = sfm.tree_text()
        assert "top/" in text and "  sub/" in text


class TestDynamicFolderConditions:
    def test_creator_and_state(self, db, store):
        dfm = DynamicFolderManager(db)
        folder = dfm.create_folder(
            "ana-finals", CreatorIs("ana") & StateIs("final"))
        h1 = store.create("d1", "ana")
        store.create("d2", "ben")
        assert len(folder) == 0
        store.set_state(h1.doc, "final", "ana")
        assert folder.contents() == [h1.doc]

    def test_name_and_size(self, db, store):
        dfm = DynamicFolderManager(db)
        folder = dfm.create_folder(
            "big-reports", NameContains("report") & SizeAtLeast(5))
        store.create("summary", "ana", text="0123456789")
        h = store.create("Q3 Report", "ana", text="12")
        assert len(folder) == 0
        h.insert_text(2, "3456", "ana")  # crosses the size threshold
        assert folder.contents() == [h.doc]

    def test_has_property(self, db, store):
        dfm = DynamicFolderManager(db)
        folder = dfm.create_folder("tendax", HasProperty("project", "tendax"))
        h = store.create("d", "ana")
        assert len(folder) == 0
        store.set_property(h.doc, "project", "tendax", "ana")
        assert h.doc in folder

    def test_negation(self, db, store):
        dfm = DynamicFolderManager(db)
        folder = dfm.create_folder("not-ana", ~CreatorIs("ana"))
        store.create("d1", "ana")
        h2 = store.create("d2", "ben")
        assert folder.contents() == [h2.doc]

    def test_or_condition(self, db, store):
        dfm = DynamicFolderManager(db)
        folder = dfm.create_folder(
            "either", CreatorIs("ana") | CreatorIs("ben"))
        h1 = store.create("d1", "ana")
        h2 = store.create("d2", "ben")
        store.create("d3", "cleo")
        assert folder.contents() == sorted([h1.doc, h2.doc])

    def test_authored_by(self, db, store):
        dfm = DynamicFolderManager(db)
        folder = dfm.create_folder("ben-wrote", AuthoredBy("ben", 3))
        h = store.create("d", "ana", text="base ")
        assert len(folder) == 0
        h.insert_text(5, "ben text", "ben")
        assert h.doc in folder
        # Deleting ben's visible characters drops the document out.
        h.delete_range(5, 8, "ana")
        assert h.doc not in folder


class TestPaperExample:
    """'All documents a certain user has read within the last week.'"""

    def test_read_within_last_week(self, clock, db, store):
        dfm = DynamicFolderManager(db)
        folder = dfm.create_folder(
            "ben-read-last-week", AccessedBy("ben", "read", within=7 * DAY))
        h1 = store.create("d1", "ana", text="x")
        h2 = store.create("d2", "ana", text="y")
        store.open(h1.doc, "ben")
        assert folder.contents() == [h1.doc]
        # Eight days pass; the read ages out (visible after revalidate).
        clock.advance(8 * DAY)
        store.open(h2.doc, "ben")
        assert h2.doc in folder
        folder.revalidate()
        assert folder.contents() == [h2.doc]

    def test_modified_within(self, clock, db, store):
        dfm = DynamicFolderManager(db)
        folder = dfm.create_folder("fresh", ModifiedWithin(DAY))
        h = store.create("d", "ana", text="x")
        assert h.doc in folder
        clock.advance(2 * DAY)
        folder.revalidate()
        assert h.doc not in folder
        h.insert_text(0, "y", "ana")   # touching it brings it back
        assert h.doc in folder


class TestManager:
    def test_duplicate_name_rejected(self, db):
        dfm = DynamicFolderManager(db)
        dfm.create_folder("f", CreatorIs("ana"))
        with pytest.raises(FolderError):
            dfm.create_folder("f", CreatorIs("ben"))

    def test_drop_folder(self, db):
        dfm = DynamicFolderManager(db)
        dfm.create_folder("f", CreatorIs("ana"))
        dfm.drop_folder("f")
        with pytest.raises(FolderError):
            dfm.folder("f")

    def test_membership_listener(self, db, store):
        dfm = DynamicFolderManager(db)
        events = []
        dfm.create_folder("ana-docs", CreatorIs("ana"))
        dfm.on_membership_change(
            lambda name, doc, member: events.append((name, member)))
        store.create("d", "ana")
        assert ("ana-docs", True) in events

    def test_close_stops_refresh(self, db, store):
        dfm = DynamicFolderManager(db)
        folder = dfm.create_folder("ana-docs", CreatorIs("ana"))
        dfm.close()
        store.create("d", "ana")
        assert len(folder) == 0

    def test_contents_fresh_within_one_commit(self, db, store):
        """The paper's freshness claim: membership reflects the edit
        without any polling or re-scan in between."""
        dfm = DynamicFolderManager(db)
        folder = dfm.create_folder("big", SizeAtLeast(10))
        h = store.create("d", "ana", text="123456789")
        before = folder.stats["full_scans"]
        h.insert_text(0, "0", "ana")
        assert h.doc in folder
        assert folder.stats["full_scans"] == before  # no rescan happened


class TestFolderPersistence:
    def test_spec_roundtrip(self):
        from repro.folders import condition_from_spec, condition_to_spec
        condition = ((CreatorIs("ana") & SizeAtLeast(5))
                     | ~StateIs("draft")
                     | AccessedBy("ben", "read", within=3600.0)
                     | AuthoredBy("cleo", 2)
                     | HasProperty("topic", "db")
                     | NameContains("x")
                     | ModifiedWithin(60.0))
        spec = condition_to_spec(condition)
        rebuilt = condition_from_spec(spec)
        assert condition_to_spec(rebuilt) == spec

    def test_unserialisable_condition_rejected(self):
        from repro.folders import condition_to_spec
        from repro.folders.dynamic import Condition

        class Custom(Condition):
            def matches(self, ctx, doc):
                return True

        with pytest.raises(FolderError):
            condition_to_spec(Custom())

    def test_save_and_load(self, db, store):
        dfm = DynamicFolderManager(db)
        dfm.create_folder("ana-docs", CreatorIs("ana"))
        dfm.save_folder("ana-docs", "ana")
        # A fresh manager (e.g. after restart) reloads the definition.
        dfm2 = DynamicFolderManager(db)
        assert dfm2.load_folders() == ["ana-docs"]
        store.create("d", "ana")
        assert len(dfm2.folder("ana-docs")) == 1

    def test_definitions_survive_recovery(self, db, store):
        from repro.db import recover
        dfm = DynamicFolderManager(db)
        dfm.create_folder("finals", StateIs("final"))
        dfm.save_folder("finals", "ana")
        h = store.create("d", "ana")
        store.set_state(h.doc, "final", "ana")

        recovered = recover(db.wal.records())
        dfm2 = DynamicFolderManager(recovered)
        assert dfm2.load_folders() == ["finals"]
        assert h.doc in dfm2.folder("finals")

    def test_save_overwrites(self, db):
        dfm = DynamicFolderManager(db)
        dfm.create_folder("f", CreatorIs("ana"))
        dfm.save_folder("f", "ana")
        dfm.drop_folder("f")
        dfm.create_folder("f", CreatorIs("ben"))
        dfm.save_folder("f", "ana")
        dfm2 = DynamicFolderManager(db)
        dfm2.load_folders()
        spec_rows = db.query(DynamicFolderManager.DEFINITIONS).run()
        assert len(spec_rows) == 1
        assert spec_rows[0]["spec"]["user"] == "ben"

    def test_load_skips_existing(self, db):
        dfm = DynamicFolderManager(db)
        dfm.create_folder("f", CreatorIs("ana"))
        dfm.save_folder("f", "ana")
        assert dfm.load_folders() == []


class TestFeedDrivenFolders:
    """Regressions for the changefeed refactor: deletes reach dynamic
    membership and listings stay ordered and pageable."""

    def test_delete_document_drops_membership(self, db, store):
        dfm = DynamicFolderManager(db)
        folder = dfm.create_folder("finals", StateIs("final"))
        h = store.create("d", "ana")
        store.set_state(h.doc, "final", "ana")
        assert h.doc in folder
        before = folder.stats["full_scans"]
        store.delete_document(h.doc, "ana")
        assert h.doc not in folder
        assert folder.contents() == []
        assert folder.stats["full_scans"] == before  # no rescan needed

    def test_archived_documents_are_folder_eligible(self, db, store):
        dfm = DynamicFolderManager(db)
        folder = dfm.create_folder("shelf", HasProperty("topic", "db"))
        doc = store.import_archived("arch", "ana", text="whole blob",
                                    props={"topic": "db"})
        assert doc in folder
        store.delete_document(doc, "ana")
        assert doc not in folder

    def test_contents_paging_is_ordered(self, db, store):
        dfm = DynamicFolderManager(db)
        folder = dfm.create_folder("all", SizeAtLeast(0))
        docs = [store.create(f"d{i}", "ana").doc for i in range(5)]
        full = folder.contents()
        assert full == sorted(docs)
        assert folder.contents(limit=2) == full[:2]
        store.delete_document(docs[0], "ana")
        assert folder.contents(limit=2) == sorted(docs[1:])[:2]
