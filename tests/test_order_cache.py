"""The chunked order cache: unit, property, obs and recovery coverage.

The cache is the editor's only view of character order, so its contract
is absolute: after *any* interleaving of inserts, logical deletes and
undeletes — applied locally or observed via commit notifications — the
cached sequence must equal the database chain, and the structural
invariants (bounded chunks, consistent oid→chunk map) must hold.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db import Database, recover_file
from repro.ids import Oid
from repro.text import DocumentStore
from repro.text import chars as C
from repro.text.ordercache import (
    ChunkedOrderCache,
    FlatOrderCache,
    make_order_cache,
)


def _oid(i: int) -> Oid:
    return Oid("t", i)


def _row(i: int, ch: str = "x", style=None, author: str = "u") -> dict:
    return {"char": _oid(i), "ch": ch, "style": style, "author": author}


class TinyChunkCache(ChunkedOrderCache):
    """Chunk size 4 so a handful of edits exercises split and merge."""

    CHUNK = 4


# ---------------------------------------------------------------------------
# Unit: the chunked structure in isolation
# ---------------------------------------------------------------------------

class TestChunkedOrderCache:
    def test_rebuild_and_render(self):
        cache = TinyChunkCache(_row(i, ch=chr(97 + i)) for i in range(10))
        assert len(cache) == 10
        assert cache.text() == "abcdefghij"
        assert cache.oids() == [_oid(i) for i in range(10)]
        assert cache.check() == []

    def test_insert_splits_chunks(self):
        cache = TinyChunkCache()
        for i in range(40):
            cache.insert(i, _oid(i), "a", None, "u")
        assert len(cache) == 40
        assert cache.check() == []
        assert [cache.index_of(_oid(i)) for i in range(40)] == list(range(40))

    def test_remove_merges_chunks(self):
        cache = TinyChunkCache(_row(i) for i in range(32))
        for i in range(0, 32, 2):
            cache.remove(_oid(i))
        assert len(cache) == 16
        assert cache.check() == []
        assert cache.oids() == [_oid(i) for i in range(1, 32, 2)]

    def test_remove_returns_former_index(self):
        cache = TinyChunkCache(_row(i) for i in range(9))
        assert cache.remove(_oid(4)) == 4
        assert cache.remove(_oid(5)) == 4  # shifted left

    def test_remove_to_empty_and_reinsert(self):
        cache = TinyChunkCache(_row(i) for i in range(6))
        for i in range(6):
            cache.remove(_oid(i))
        assert len(cache) == 0
        assert cache.text() == ""
        assert cache.last_oid() is None
        cache.insert(0, _oid(99), "z", None, "u")
        assert cache.text() == "z"
        assert cache.check() == []

    def test_mid_insert_keeps_order(self):
        cache = TinyChunkCache(_row(i, ch=chr(97 + i)) for i in range(8))
        cache.insert(3, _oid(100), "X", None, "u")
        assert cache.text() == "abcXdefgh"
        assert cache.index_of(_oid(100)) == 3
        assert cache.oid_at(3) == _oid(100)
        assert cache.check() == []

    def test_oid_slice_spans_chunks(self):
        cache = TinyChunkCache(_row(i) for i in range(20))
        assert cache.oid_slice(2, 11) == [_oid(i) for i in range(2, 11)]
        assert cache.oid_slice(15, 99) == [_oid(i) for i in range(15, 20)]
        assert cache.oid_slice(7, 7) == []

    def test_set_style_feeds_styled_runs(self):
        cache = TinyChunkCache(_row(i, ch="a") for i in range(6))
        bold = Oid("style", 1)
        assert cache.set_style(_oid(2), bold)
        assert cache.set_style(_oid(3), bold)
        assert not cache.set_style(_oid(999), bold)
        assert cache.styled_runs() == [
            ("aa", None), ("aa", bold), ("aa", None),
        ]

    def test_authors_counts(self):
        cache = TinyChunkCache(
            _row(i, author="ana" if i % 3 else "ben") for i in range(9)
        )
        assert cache.authors() == {"ana": 6, "ben": 3}

    def test_out_of_bounds_raise(self):
        cache = TinyChunkCache(_row(i) for i in range(3))
        with pytest.raises(IndexError):
            cache.oid_at(3)
        with pytest.raises(IndexError):
            cache.insert(5, _oid(9), "a", None, "u")
        with pytest.raises(KeyError):
            cache.index_of(_oid(77))

    def test_cached_text_invalidated_by_every_mutation(self):
        cache = TinyChunkCache(_row(i, ch=chr(97 + i)) for i in range(8))
        assert cache.text() == "abcdefgh"    # populate per-chunk joins
        cache.insert(1, _oid(50), "Z", None, "u")
        assert cache.text() == "aZbcdefgh"
        cache.remove(_oid(3))
        assert cache.text() == "aZbcefgh"
        assert cache.check() == []

    def test_make_order_cache_kinds(self):
        assert isinstance(make_order_cache("chunked"), ChunkedOrderCache)
        assert isinstance(make_order_cache("flat"), FlatOrderCache)
        with pytest.raises(ValueError):
            make_order_cache("btree")


@settings(max_examples=60, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 2), st.integers(0, 500)),
                max_size=60))
def test_chunked_matches_flat_reference(ops):
    """Random insert/remove/lookup programme: chunked == flat, always."""
    chunked, flat = TinyChunkCache(), FlatOrderCache()
    next_id = 0
    for kind, arg in ops:
        if kind == 0 or len(flat) == 0:   # insert
            index = arg % (len(flat) + 1)
            ch = chr(97 + next_id % 26)
            for cache in (chunked, flat):
                cache.insert(index, _oid(next_id), ch, None, "u")
            next_id += 1
        elif kind == 1:                   # remove
            victim = flat.oids()[arg % len(flat)]
            assert chunked.remove(victim) == flat.remove(victim)
        else:                             # lookup
            probe = flat.oids()[arg % len(flat)]
            assert chunked.index_of(probe) == flat.index_of(probe)
            assert chunked.oid_at(arg % len(flat)) == \
                flat.oid_at(arg % len(flat))
    assert chunked.text() == flat.text()
    assert chunked.oids() == flat.oids()
    assert chunked.last_oid() == flat.last_oid()
    assert chunked.check() == []
    assert flat.check() == []


# ---------------------------------------------------------------------------
# Property: cache order == chain order through the full editing stack
# ---------------------------------------------------------------------------

@settings(max_examples=40, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(0, 3), st.integers(0, 500),
                  st.text(alphabet=st.characters(min_codepoint=32,
                                                 max_codepoint=126),
                          min_size=1, max_size=6)),
        max_size=25,
    )
)
def test_cache_order_matches_chain_after_interleaved_bursts(ops):
    """Seeded interleaved insert/delete/undelete bursts across two handles
    (one chunked, one flat): every cache equals the database chain."""
    db = Database("p")
    store = DocumentStore(db, log_reads=False, log_writes=False)
    h1 = store.create("d", "u1")
    h2 = store.handle(h1.doc, cache="flat")
    deleted_batches: list[list] = []
    for kind, raw_pos, text in ops:
        handle = h1 if raw_pos % 2 == 0 else h2
        length = handle.length()
        if kind in (0, 1) or length == 0:       # insert burst
            handle.insert_text(raw_pos % (length + 1), text, "u")
        elif kind == 2:                          # delete burst
            pos = raw_pos % length
            count = min(1 + len(text), length - pos)
            deleted_batches.append(handle.delete_range(pos, count, "u"))
        elif deleted_batches:                    # undelete a prior burst
            handle.undelete_chars(
                deleted_batches.pop(raw_pos % len(deleted_batches)), "u"
            )
    chain = C.chain_text(db, h1.doc, h1.begin_char)
    assert h1.text() == chain
    assert h2.text() == chain
    assert h1._cache.check() == []
    assert h2._cache.check() == []
    assert h1.char_oids() == h2.char_oids()
    # A freshly refreshed view agrees with the incrementally maintained one.
    h1.refresh()
    assert h1.text() == chain


# ---------------------------------------------------------------------------
# Obs: text() after a keystroke must not rescan the table
# ---------------------------------------------------------------------------

class TestCacheMetrics:
    def _full_scans(self, db) -> int:
        return db.metrics_snapshot()["doc.full_scans"]["value"]

    def test_text_after_keystroke_does_no_full_scan(self):
        db = Database("m")
        store = DocumentStore(db, log_reads=False, log_writes=False)
        handle = store.create("d", "ana", text="hello world")
        baseline = self._full_scans(db)
        handle.insert_text(5, "!", "ana")
        assert handle.text() == "hello! world"
        assert handle.styled_runs()[0][0] == "hello! world"
        assert handle.authors() == {"ana": 12}
        assert self._full_scans(db) == baseline, \
            "text()/styled_runs()/authors() after a keystroke must be " \
            "served from the cache, not a tx_chars scan"

    def test_refresh_and_open_count_as_full_scans(self):
        db = Database("m")
        store = DocumentStore(db, log_reads=False, log_writes=False)
        handle = store.create("d", "ana", text="abc")
        before = self._full_scans(db)
        handle.refresh()
        assert self._full_scans(db) == before + 1
        store.handle(handle.doc)
        assert self._full_scans(db) == before + 2

    def test_splice_and_lookup_latencies_recorded(self):
        db = Database("m")
        store = DocumentStore(db, log_reads=False, log_writes=False)
        handle = store.create("d", "ana", text="abcdef")
        handle.insert_text(3, "x", "ana")
        handle.char_oid_at(2)
        handle.position_of(handle.char_oid_at(2))
        snap = db.metrics_snapshot()
        assert snap["doc.cache_splice_seconds"]["count"] >= 7
        assert snap["doc.cache_lookup_seconds"]["count"] >= 3


# ---------------------------------------------------------------------------
# Crash torture: refresh() against a recovered engine
# ---------------------------------------------------------------------------

@pytest.mark.torture
class TestRefreshAfterRecovery:
    @pytest.mark.filterwarnings(
        "ignore:skipping torn trailing WAL record")
    def test_refresh_after_crash_recovery(self, tmp_path):
        """Crash seeded typist schedules, recover the WAL, and make sure a
        recovered handle's cache (built by open, then refresh()ed after
        further edits) equals the recovered chain."""
        from repro.faults import FaultPlan
        from tests.test_crash_torture import _run_typist_schedule

        for seed in (3, 11, 29):
            plan = FaultPlan.random(seed, with_delivery=True)
            run = _run_typist_schedule(
                seed, str(tmp_path / f"wal-{seed}.jsonl"), plan)
            run["server"].db.close()

            recovered = recover_file(run["wal_path"])
            store = DocumentStore(recovered)
            clone = store.handle(run["handle"].doc)
            chain = C.chain_text(recovered, clone.doc, clone.begin_char)
            assert clone.text() == chain, f"seed {seed}"
            assert clone._cache.check() == [], f"seed {seed}"

            # The recovered engine is live: edit, then refresh() must
            # converge on the incrementally maintained view.
            clone.insert_text(0, "post-recovery ", "phoenix")
            incremental = clone.text()
            clone.refresh()
            assert clone.text() == incremental, f"seed {seed}"
            assert clone.text().startswith("post-recovery "), f"seed {seed}"
